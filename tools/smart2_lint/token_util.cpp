#include "smart2_lint/token_util.hpp"

#include <algorithm>
#include <array>

namespace smart2::lint {

bool id_is(const Tokens& t, std::size_t i, std::string_view s) {
  return i < t.size() && t[i].kind == TokKind::kIdentifier && t[i].text == s;
}

bool is_id(const Tokens& t, std::size_t i) {
  return i < t.size() && t[i].kind == TokKind::kIdentifier;
}

bool punct_is(const Tokens& t, std::size_t i, std::string_view s) {
  return i < t.size() && t[i].kind == TokKind::kPunct && t[i].text == s;
}

std::size_t match_pair(const Tokens& t, std::size_t open, std::string_view o,
                       std::string_view c) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct) continue;
    if (t[i].text == o) {
      ++depth;
    } else if (t[i].text == c) {
      if (--depth == 0) return i;
    }
  }
  return t.size();
}

std::size_t match_angle(const Tokens& t, std::size_t open) {
  std::size_t depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != TokKind::kPunct) continue;
    if (t[i].text == ";" || t[i].text == "{" || t[i].text == "}")
      return t.size();
    if (t[i].text == "<") {
      ++depth;
    } else if (t[i].text == ">") {
      if (--depth == 0) return i;
    }
  }
  return t.size();
}

bool stdish_reference(const Tokens& t, std::size_t i) {
  if (i == 0) return true;
  if (punct_is(t, i - 1, ".") || punct_is(t, i - 1, "->")) return false;
  if (punct_is(t, i - 1, "::") && i >= 2 && is_id(t, i - 2) &&
      t[i - 2].text != "std")
    return false;
  return true;
}

bool is_growth_mutator(std::string_view name) {
  return name == "push_back" || name == "emplace_back" || name == "insert" ||
         name == "emplace" || name == "push_front" || name == "emplace_front";
}

std::set<std::string_view> collect_locals(const Tokens& t,
                                          const LambdaSpan& l) {
  std::set<std::string_view> locals;
  for (std::size_t q = l.param_begin; q < l.param_end; ++q)
    if (is_id(t, q)) locals.insert(t[q].text);
  for (std::size_t q = l.body_begin; q < l.body_end; ++q) {
    if (!is_id(t, q) || q == 0) continue;
    const Token& prev = t[q - 1];
    const bool prev_ok =
        prev.kind == TokKind::kIdentifier ||
        (prev.kind == TokKind::kPunct &&
         (prev.text == ">" || prev.text == "&" || prev.text == "*"));
    const bool next_ok = punct_is(t, q + 1, "=") || punct_is(t, q + 1, ";") ||
                         punct_is(t, q + 1, "{") || punct_is(t, q + 1, ":");
    if (prev_ok && next_ok) locals.insert(t[q].text);
  }
  return locals;
}

CaptureInfo parse_captures(const Tokens& t, const LambdaSpan& l) {
  CaptureInfo info;
  for (std::size_t c = l.cap_begin; c < l.cap_end; ++c) {
    if (!punct_is(t, c, "&")) continue;
    if (is_id(t, c + 1) && c + 1 < l.cap_end)
      info.by_ref.insert(t[c + 1].text);
    else
      info.all_by_ref = true;  // lone & ( "[&]" or "[&, x]" )
  }
  return info;
}

std::vector<LambdaSpan> find_lambdas(const Tokens& t, std::size_t open,
                                     std::size_t close) {
  std::vector<LambdaSpan> lambdas;
  for (std::size_t k = open + 1; k < close; ++k) {
    if (!punct_is(t, k, "[")) continue;
    // Argument position only: a '[' after '(' or ',' starts a capture list,
    // a '[' after an identifier or ']' is a subscript.
    if (!(punct_is(t, k - 1, "(") || punct_is(t, k - 1, ","))) continue;
    const std::size_t cap_close = match_pair(t, k, "[", "]");
    if (cap_close >= close) continue;
    LambdaSpan l;
    l.cap_begin = k + 1;
    l.cap_end = cap_close;
    std::size_t b = cap_close + 1;
    if (punct_is(t, b, "(")) {
      const std::size_t pclose = match_pair(t, b, "(", ")");
      if (pclose >= close) continue;
      l.param_begin = b + 1;
      l.param_end = pclose;
      b = pclose + 1;
    }
    while (b < close && !punct_is(t, b, "{")) ++b;  // mutable / noexcept / ->
    if (b >= close) continue;
    const std::size_t body_close = match_pair(t, b, "{", "}");
    if (body_close == t.size()) continue;
    l.body_begin = b + 1;
    l.body_end = body_close;
    lambdas.push_back(l);
    k = body_close;
  }
  return lambdas;
}

bool is_stl_collision_member(std::string_view s) {
  static constexpr std::array<std::string_view, 45> kMembers = {
      "add",     "append",  "assign",      "at",       "back",    "begin",
      "c_str",   "capacity", "cbegin",     "cend",     "clear",   "compare",
      "contains", "count",  "data",        "emplace",  "emplace_back",
      "empty",   "end",     "erase",       "exchange", "extract", "fill",
      "find",    "front",   "get",         "insert",   "length",  "load",
      "lock",    "name",    "pop",         "pop_back", "push",    "push_back",
      "release", "reserve", "reset",       "resize",   "size",    "store",
      "str",     "substr",  "swap",        "top"};
  return std::find(kMembers.begin(), kMembers.end(), s) != kMembers.end();
}

bool marker_at_line_start(std::string_view comment, std::size_t pos) {
  while (pos > 0) {
    const char c = comment[pos - 1];
    if (c == '\n') return true;
    if (c != ' ' && c != '\t' && c != '/' && c != '*' && c != '!')
      return false;
    --pos;
  }
  return true;
}

std::vector<AllocSite> scan_alloc_sites(const Tokens& t, std::size_t open,
                                        std::size_t close,
                                        bool flag_std_function) {
  std::vector<AllocSite> out;
  if (open >= close || close > t.size()) return out;

  // Containers the body reserve()s up front are amortized-allocation-free
  // in steady state; growth calls on them are sanctioned.
  std::set<std::string_view> reserved;
  for (std::size_t m = open + 2; m + 2 < close; ++m)
    if ((punct_is(t, m, ".") || punct_is(t, m, "->")) &&
        id_is(t, m + 1, "reserve") && punct_is(t, m + 2, "(") &&
        is_id(t, m - 1))
      reserved.insert(t[m - 1].text);

  for (std::size_t m = open + 1; m < close; ++m) {
    if (id_is(t, m, "new")) {
      out.push_back({m, "new expression", {}, {}});
      continue;
    }
    if ((id_is(t, m, "make_unique") || id_is(t, m, "make_shared")) &&
        stdish_reference(t, m) &&
        (punct_is(t, m + 1, "(") || punct_is(t, m + 1, "<"))) {
      out.push_back({m,
                     t[m].text == "make_unique" ? "std::make_unique"
                                                : "std::make_shared",
                     {},
                     {}});
      continue;
    }
    // std::function construction: a declared object or a temporary. A
    // pointer or reference to std::function (the pool's own plumbing) does
    // not allocate at this site.
    if (flag_std_function && id_is(t, m, "function") && m >= 2 &&
        punct_is(t, m - 1, "::") && id_is(t, m - 2, "std") &&
        punct_is(t, m + 1, "<")) {
      const std::size_t gt = match_angle(t, m + 1);
      if (gt != t.size() && !punct_is(t, gt + 1, "*") &&
          !punct_is(t, gt + 1, "&") &&
          !(punct_is(t, gt + 1, "(") && punct_is(t, gt + 2, "*"))) {
        out.push_back({m, "std::function object", {}, {}});
      }
      continue;
    }
    if ((punct_is(t, m, ".") || punct_is(t, m, "->")) && m >= 1 &&
        (id_is(t, m + 1, "push_back") || id_is(t, m + 1, "emplace_back")) &&
        punct_is(t, m + 2, "(") && is_id(t, m - 1)) {
      // Only a bare named receiver: chained/indexed receivers
      // (out[i].push_back, f().push_back) address pre-sized storage in
      // this codebase's idiom.
      if (m >= 2 && t[m - 2].kind == TokKind::kPunct &&
          (t[m - 2].text == "." || t[m - 2].text == "->" ||
           t[m - 2].text == "::" || t[m - 2].text == "]" ||
           t[m - 2].text == ")"))
        continue;
      if (reserved.count(t[m - 1].text) != 0) continue;
      out.push_back({m - 1, {}, t[m - 1].text, t[m + 1].text});
    }
  }
  return out;
}

}  // namespace smart2::lint

// Token-stream matching helpers shared by the per-file rule engine
// (rules.cpp) and the interprocedural passes (symbols.cpp / project.cpp).
//
// Everything here operates on the flat code-token vector a LexResult
// carries: comments, strings and preprocessor lines are already stripped,
// so matching identifiers is safe against literal content.
#pragma once

#include <cstddef>
#include <set>
#include <string_view>
#include <vector>

#include "smart2_lint/token.hpp"

namespace smart2::lint {

using Tokens = std::vector<Token>;

bool id_is(const Tokens& t, std::size_t i, std::string_view s);
bool is_id(const Tokens& t, std::size_t i);
bool punct_is(const Tokens& t, std::size_t i, std::string_view s);

/// Index of the closer matching the opener at `open`, or t.size().
std::size_t match_pair(const Tokens& t, std::size_t open, std::string_view o,
                       std::string_view c);

/// Like match_pair for template argument lists; bails at tokens that cannot
/// appear inside one, so a stray comparison `a < b;` never swallows the file.
std::size_t match_angle(const Tokens& t, std::size_t open);

/// True when token i reads as a std-or-global reference: not a member
/// access (x.foo / x->foo) and not qualified by a namespace other than std.
bool stdish_reference(const Tokens& t, std::size_t i);

/// A lambda literal inside a call's argument list.
struct LambdaSpan {
  std::size_t cap_begin = 0, cap_end = 0;      // tokens inside [ ... ]
  std::size_t param_begin = 0, param_end = 0;  // tokens inside ( ... )
  std::size_t body_begin = 0, body_end = 0;    // tokens inside { ... }
};

/// Mutating members whose call on a shared object inside a parallel body
/// is order-dependent (and racy).
bool is_growth_mutator(std::string_view name);

/// Names that look declared inside the lambda: parameters plus body-local
/// declarations (`Type name =`, `auto name =`, `Type name;`...).
std::set<std::string_view> collect_locals(const Tokens& t, const LambdaSpan& l);

struct CaptureInfo {
  bool all_by_ref = false;
  std::set<std::string_view> by_ref;

  bool ref_captured(std::string_view name) const {
    return all_by_ref || by_ref.count(name) != 0;
  }
};

CaptureInfo parse_captures(const Tokens& t, const LambdaSpan& l);

/// Find every lambda literal between tokens (open, close) of a call's
/// argument list.
std::vector<LambdaSpan> find_lambdas(const Tokens& t, std::size_t open,
                                     std::size_t close);

/// Member names shared with the standard containers / smart pointers /
/// atomics. A member call `x.data()` is overwhelmingly more likely to be
/// an STL call than a call into a same-named project function, and
/// resolving it by name floods the hot closure with false edges — so the
/// call graph does not resolve member calls through these names, and the
/// triviality scan ignores them. Documented limit: a project method named
/// e.g. `size` is invisible to the graph when called through an object.
bool is_stl_collision_member(std::string_view s);

/// True when the marker occurrence at `pos` inside a comment's text sits
/// at the start of its line — only whitespace and comment punctuation
/// (slashes, '*', '!') before it. Distinguishes a real `// SMART2_HOT`
/// marker from prose that merely mentions one.
bool marker_at_line_start(std::string_view comment, std::size_t pos);

/// One heap-allocation idiom inside a token range (see scan_alloc_sites).
struct AllocSite {
  std::size_t tok = 0;      // index of the offending token
  std::string_view what;    // "new expression", "std::make_unique", ...
  std::string_view recv;    // receiver name for growth calls, else empty
  std::string_view member;  // "push_back"/"emplace_back" for growth calls
};

/// Scan (open, close) — a function body given by its brace pair — for the
/// allocation idioms this codebase uses: `new` expressions,
/// std::make_unique / std::make_shared, push_back / emplace_back on a bare
/// local container the body never reserve()s, and (when
/// `flag_std_function`) std::function object construction. Lexical by
/// design; the alloc_test binary backstops it with a run-time counter.
std::vector<AllocSite> scan_alloc_sites(const Tokens& t, std::size_t open,
                                        std::size_t close,
                                        bool flag_std_function);

}  // namespace smart2::lint

// smart2_lint — determinism / parallel-safety / hygiene linter and
// whole-project analyzer for the 2SMaRT tree. See DESIGN.md "Correctness
// tooling" for the rule catalog.
//
// Usage:
//   smart2_lint [--json FILE] [--baseline FILE] [--write-baseline FILE]
//               [--callgraph-dot FILE] [--rules a,b,c] [--stats]
//               [--fail-stale-baseline] [--list-rules] [--quiet] [PATH...]
//
// PATHs may be files or directories (walked recursively for C++ sources);
// with no PATH the standard project directories that exist under the
// current working directory are scanned. Exit status: 0 clean, 1 when
// actionable (non-NOLINTed, non-baselined) findings exist — or when the
// baseline has stale entries and --fail-stale-baseline is given — and 2
// on usage or I/O errors.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "smart2_lint/baseline.hpp"
#include "smart2_lint/diagnostics.hpp"
#include "smart2_lint/driver.hpp"

namespace {

constexpr const char* kDefaultDirs[] = {"src", "bench", "tools", "examples",
                                        "tests"};

int usage(std::ostream& os, int code) {
  os << "usage: smart2_lint [options] [PATH...]\n"
     << "  --json FILE            also write a machine-readable report\n"
     << "  --baseline FILE        accept findings listed in FILE; only\n"
     << "                         regressions affect the exit code\n"
     << "  --fail-stale-baseline  exit 1 when a baseline entry matches\n"
     << "                         nothing (the recorded debt was paid)\n"
     << "  --write-baseline FILE  write every current unsuppressed finding\n"
     << "                         as a baseline and exit 0\n"
     << "  --callgraph-dot FILE   dump the hot-path call graph (Graphviz)\n"
     << "  --rules a,b,c          report only the named rules\n"
     << "  --stats                print project/call-graph statistics\n"
     << "  --list-rules           print the rule catalog and exit\n"
     << "  --quiet                suppress per-finding fix-it hints\n"
     << "Suppress a finding in source with // NOLINT(smart2-<rule>) on the\n"
     << "offending line or // NOLINTNEXTLINE(smart2-<rule>) above it.\n";
  return code;
}

void list_rules() {
  for (const smart2::lint::RuleInfo& r : smart2::lint::rule_catalog()) {
    std::cout << r.id << "\n    " << r.summary << "\n    fix-it: " << r.fixit
              << "\n";
  }
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream ss(csv);
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "smart2_lint: cannot write " << path << "\n";
    return false;
  }
  out << content;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string json_path, baseline_path, write_baseline_path, dot_path;
  smart2::lint::LintOptions options;
  bool quiet = false, stats = false, fail_stale = false;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--list-rules") {
      list_rules();
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    if (arg == "--stats") {
      stats = true;
      continue;
    }
    if (arg == "--fail-stale-baseline") {
      fail_stale = true;
      continue;
    }
    if (arg == "--json" || arg == "--baseline" || arg == "--write-baseline" ||
        arg == "--callgraph-dot" || arg == "--rules") {
      if (a + 1 >= argc) return usage(std::cerr, 2);
      const std::string value = argv[++a];
      if (arg == "--json") json_path = value;
      if (arg == "--baseline") baseline_path = value;
      if (arg == "--write-baseline") write_baseline_path = value;
      if (arg == "--callgraph-dot") {
        dot_path = value;
        options.want_dot = true;
      }
      if (arg == "--rules") {
        options.rules = split_csv(value);
        for (const std::string& r : options.rules)
          if (!smart2::lint::is_known_rule(r)) {
            std::cerr << "smart2_lint: unknown rule '" << r
                      << "' (see --list-rules)\n";
            return 2;
          }
      }
      continue;
    }
    if (!arg.empty() && arg[0] == '-') return usage(std::cerr, 2);
    paths.push_back(arg);
  }

  if (paths.empty())
    for (const char* dir : kDefaultDirs)
      if (std::filesystem::is_directory(dir)) paths.emplace_back(dir);
  if (paths.empty()) {
    std::cerr << "smart2_lint: nothing to scan (no PATH given and no project "
                 "directories here)\n";
    return 2;
  }

  smart2::lint::LintResult result;
  try {
    result = smart2::lint::lint_paths(paths, options);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  smart2::lint::LintSummary& summary = result.summary;

  if (!dot_path.empty() && !write_file(dot_path, result.callgraph_dot))
    return 2;

  if (!write_baseline_path.empty()) {
    const smart2::lint::Baseline b =
        smart2::lint::baseline_from_findings(summary.findings);
    if (!write_file(write_baseline_path,
                    smart2::lint::serialize_baseline(b)))
      return 2;
    std::cout << "smart2_lint: wrote " << b.entries.size()
              << " baseline entr" << (b.entries.size() == 1 ? "y" : "ies")
              << " to " << write_baseline_path << "\n";
    return 0;
  }

  smart2::lint::BaselineMatch match;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "smart2_lint: cannot read " << baseline_path << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    smart2::lint::Baseline baseline;
    std::string error;
    if (!smart2::lint::parse_baseline(ss.str(), &baseline, &error)) {
      std::cerr << "smart2_lint: " << baseline_path << ": " << error << "\n";
      return 2;
    }
    match = smart2::lint::apply_baseline(baseline, &summary.findings);
  }

  std::size_t suppressed = 0, baselined = 0;
  for (const smart2::lint::Finding& f : summary.findings) {
    if (f.suppressed) {
      ++suppressed;
      continue;
    }
    if (f.baselined) {
      ++baselined;
      continue;
    }
    std::cout << smart2::lint::render_text(f) << "\n";
    if (!quiet) std::cout << "    fix-it: " << f.fixit << "\n";
  }

  for (const smart2::lint::BaselineEntry& e : match.stale)
    std::cerr << "smart2_lint: stale baseline entry: " << e.file << ":"
              << e.line << " [" << e.rule << "] — no such finding remains\n";

  if (!json_path.empty() &&
      !write_file(json_path, smart2::lint::to_json(summary)))
    return 2;

  if (stats) {
    const smart2::lint::ProjectStats& s = summary.stats;
    std::cout << "smart2_lint: " << s.functions << " function symbols, "
              << s.graph_nodes << " call-graph nodes, " << s.graph_edges
              << " edges; hot closure " << s.hot_closure << " nodes from "
              << s.hot_seeds << " seeds\n";
  }

  const std::size_t bad = summary.actionable_count();
  std::cout << "smart2_lint: scanned " << summary.files_scanned << " files, "
            << bad << " finding" << (bad == 1 ? "" : "s") << " (" << suppressed
            << " suppressed, " << baselined << " baselined";
  if (!match.stale.empty())
    std::cout << ", " << match.stale.size() << " stale baseline entr"
              << (match.stale.size() == 1 ? "y" : "ies");
  std::cout << ")\n";
  if (bad != 0) return 1;
  if (fail_stale && !match.stale.empty()) return 1;
  return 0;
}

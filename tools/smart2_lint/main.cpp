// smart2_lint — determinism / parallel-safety / hygiene linter for the
// 2SMaRT tree. See DESIGN.md "Correctness tooling" for the rule catalog.
//
// Usage:
//   smart2_lint [--json FILE] [--list-rules] [--quiet] [PATH...]
//
// PATHs may be files or directories (walked recursively for C++ sources);
// with no PATH the standard project directories that exist under the
// current working directory are scanned. Exit status: 0 clean, 1 when
// unsuppressed findings exist, 2 on usage or I/O errors.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "smart2_lint/diagnostics.hpp"
#include "smart2_lint/driver.hpp"

namespace {

constexpr const char* kDefaultDirs[] = {"src", "bench", "tools", "examples",
                                        "tests"};

int usage(std::ostream& os, int code) {
  os << "usage: smart2_lint [--json FILE] [--list-rules] [--quiet] [PATH...]\n"
     << "  --json FILE   also write a machine-readable report to FILE\n"
     << "  --list-rules  print the rule catalog and exit\n"
     << "  --quiet       suppress per-finding fix-it hints\n"
     << "Suppress a finding in source with // NOLINT(smart2-<rule>) on the\n"
     << "offending line or // NOLINTNEXTLINE(smart2-<rule>) above it.\n";
  return code;
}

void list_rules() {
  for (const smart2::lint::RuleInfo& r : smart2::lint::rule_catalog()) {
    std::cout << r.id << "\n    " << r.summary << "\n    fix-it: " << r.fixit
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string json_path;
  bool quiet = false;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--help" || arg == "-h") return usage(std::cout, 0);
    if (arg == "--list-rules") {
      list_rules();
      return 0;
    }
    if (arg == "--quiet") {
      quiet = true;
      continue;
    }
    if (arg == "--json") {
      if (a + 1 >= argc) return usage(std::cerr, 2);
      json_path = argv[++a];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') return usage(std::cerr, 2);
    paths.push_back(arg);
  }

  if (paths.empty())
    for (const char* dir : kDefaultDirs)
      if (std::filesystem::is_directory(dir)) paths.emplace_back(dir);
  if (paths.empty()) {
    std::cerr << "smart2_lint: nothing to scan (no PATH given and no project "
                 "directories here)\n";
    return 2;
  }

  smart2::lint::LintSummary summary;
  try {
    summary = smart2::lint::lint_paths(paths);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  std::size_t suppressed = 0;
  for (const smart2::lint::Finding& f : summary.findings) {
    if (f.suppressed) {
      ++suppressed;
      continue;
    }
    std::cout << smart2::lint::render_text(f) << "\n";
    if (!quiet) std::cout << "    fix-it: " << f.fixit << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::cerr << "smart2_lint: cannot write " << json_path << "\n";
      return 2;
    }
    out << smart2::lint::to_json(summary);
  }

  const std::size_t bad = summary.unsuppressed_count();
  std::cout << "smart2_lint: scanned " << summary.files_scanned << " files, "
            << bad << " finding" << (bad == 1 ? "" : "s") << " (" << suppressed
            << " suppressed)\n";
  return bad == 0 ? 0 : 1;
}

// Whole-project analysis state for smart2_lint.
//
// A ProjectIndex owns every scanned file's content, token stream, and
// symbol table; the call-graph pass (callgraph.hpp) and the
// interprocedural rules (lint_project) run on top of it. Per-file lexical
// rules keep using lint_text(); the driver composes both.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "smart2_lint/diagnostics.hpp"
#include "smart2_lint/lexer.hpp"
#include "smart2_lint/symbols.hpp"

namespace smart2::lint {

/// One scanned file: the content buffer must stay alive for as long as the
/// token stream (string_views into it) is used, so records are
/// heap-pinned and owned by the index.
struct FileRecord {
  std::string path;  // '/'-normalized, as given
  std::string content;
  LexResult lexed;
  FileSymbols symbols;
};

/// True for paths the interprocedural hot-path / float rules audit: the
/// production tree under src/. Tools, tests, benches and examples build
/// call-graph context but do not raise hot-path obligations.
bool in_analysis_scope(std::string_view path);

class ProjectIndex {
 public:
  /// Lex + symbol-index one file and add it to the project.
  void add(std::string path, std::string content);

  const std::vector<std::unique_ptr<FileRecord>>& files() const {
    return files_;
  }
  std::size_t function_count() const;

 private:
  std::vector<std::unique_ptr<FileRecord>> files_;
};

struct ProjectFindings {
  std::vector<Finding> findings;  // NOT yet NOLINT-filtered
  ProjectStats stats;
  std::string callgraph_dot;  // filled when `want_dot`
};

/// Run the interprocedural rules (smart2-hot-unmarked,
/// smart2-hot-callee-alloc, smart2-parallel-callee-mutation) over the
/// whole project.
ProjectFindings lint_project(const ProjectIndex& index, bool want_dot = false);

/// Convenience for tests: build an index over (path, content) pairs, run
/// the per-file rules AND the project rules, apply NOLINT, and return all
/// findings sorted per file.
std::vector<Finding> lint_files(
    const std::vector<std::pair<std::string, std::string>>& files);

}  // namespace smart2::lint

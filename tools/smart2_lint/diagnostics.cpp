#include "smart2_lint/diagnostics.hpp"

#include <map>
#include <sstream>

namespace smart2::lint {

const std::vector<RuleInfo>& rule_catalog() {
  // Determinism, then parallel-safety, then hygiene. IDs are the NOLINT
  // spelling: // NOLINT(smart2-<rule>).
  static const std::vector<RuleInfo> kCatalog = {
      {"smart2-ban-rand",
       "std::rand/srand: implementation-defined stream, hidden global state",
       "draw numbers from a seeded smart2::Rng instead"},
      {"smart2-seed-entropy",
       "entropy-based seeding (std::random_device, time(nullptr)) makes runs "
       "unrepeatable",
       "seed smart2::Rng from an explicit constant or a CLI/env parameter"},
      {"smart2-raw-mt19937",
       "raw <random> engine constructed outside src/common/rng.*; stream and "
       "distributions are not bit-stable across standard libraries",
       "use smart2::Rng (xoshiro256**) and its distribution helpers"},
      {"smart2-unordered-iteration",
       "range-for over an unordered container: iteration order is "
       "implementation-defined and can leak into output",
       "iterate a sorted copy of the keys, or use std::map/std::set when "
       "order reaches any output or accumulation"},
      {"smart2-raw-thread",
       "raw std::thread/std::async outside src/common/parallel.*; ad-hoc "
       "threads bypass the deterministic fixed-lane pool",
       "use smart2::parallel::parallel_for / parallel_map on the global pool"},
      {"smart2-parallel-mutation",
       "growth mutation (push_back/insert/emplace) of a by-reference capture "
       "inside a parallel body: racy, and element order depends on thread "
       "interleaving",
       "pre-size the container and write index-addressed slots (out[i] = "
       "...); reduce serially after the loop"},
      {"smart2-shared-rng",
       "shared Rng captured by reference in a parallel body: draws race and "
       "their order depends on thread interleaving",
       "fork one substream per work unit before the loop (e.g. "
       "std::vector<Rng> sub = rng-per-unit via Rng::fork()) and index it by "
       "the unit id"},
      {"smart2-span-literal",
       "SMART2_SPAN / obs::counter / obs::histogram called with a computed "
       "or ill-formed name: instrumentation names must be greppable string "
       "literals matching [a-z0-9_.]+ so the trace schema and registry "
       "order never depend on run-time values",
       "pass a single [a-z0-9_.]+ string literal; for a family of related "
       "names, index a constexpr array of literals and construct obs::Span "
       "directly, or suppress one registry lookup with // "
       "NOLINT(smart2-span-literal)"},
      {"smart2-header-guard",
       "header without #pragma once or an #ifndef include guard",
       "add #pragma once as the first non-comment line"},
      {"smart2-using-namespace-header",
       "using namespace in a header leaks the namespace into every includer",
       "qualify names, or move the using-directive into a .cpp file"},
      {"smart2-hot-path-alloc",
       "heap allocation inside a function marked // SMART2_HOT",
       "borrow from the thread-local ScratchStack, hoist the container out "
       "of the hot loop, or reserve() it up front"},
  };
  return kCatalog;
}

bool is_known_rule(std::string_view id) {
  for (const RuleInfo& r : rule_catalog())
    if (r.id == id) return true;
  return false;
}

std::string render_text(const Finding& f) {
  std::ostringstream os;
  os << f.file << ':' << f.line << ':' << f.col << ": [" << f.rule << "] "
     << f.message;
  return os.str();
}

std::size_t LintSummary::unsuppressed_count() const {
  std::size_t n = 0;
  for (const Finding& f : findings)
    if (!f.suppressed) ++n;
  return n;
}

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string to_json(const LintSummary& summary) {
  std::string out;
  out += "{\n";
  out += "  \"tool\": \"smart2_lint\",\n";
  out += "  \"files_scanned\": " + std::to_string(summary.files_scanned) + ",\n";
  out += "  \"total_findings\": " + std::to_string(summary.findings.size()) +
         ",\n";
  out += "  \"unsuppressed_findings\": " +
         std::to_string(summary.unsuppressed_count()) + ",\n";

  // Per-rule counts of unsuppressed findings, sorted by rule id.
  std::map<std::string, std::size_t> counts;
  for (const Finding& f : summary.findings)
    if (!f.suppressed) ++counts[f.rule];
  out += "  \"counts\": {";
  bool first = true;
  for (const auto& [rule, n] : counts) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, rule);
    out += ": " + std::to_string(n);
  }
  out += "},\n";

  out += "  \"findings\": [";
  for (std::size_t i = 0; i < summary.findings.size(); ++i) {
    const Finding& f = summary.findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": ";
    append_json_string(out, f.file);
    out += ", \"line\": " + std::to_string(f.line);
    out += ", \"col\": " + std::to_string(f.col);
    out += ", \"rule\": ";
    append_json_string(out, f.rule);
    out += ", \"message\": ";
    append_json_string(out, f.message);
    out += ", \"fixit\": ";
    append_json_string(out, f.fixit);
    out += ", \"suppressed\": ";
    out += f.suppressed ? "true" : "false";
    out += "}";
  }
  out += summary.findings.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace smart2::lint

#include "smart2_lint/diagnostics.hpp"

#include <map>
#include <sstream>

namespace smart2::lint {

const std::vector<RuleInfo>& rule_catalog() {
  // Determinism, then parallel-safety, then hygiene. IDs are the NOLINT
  // spelling: // NOLINT(smart2-<rule>).
  static const std::vector<RuleInfo> kCatalog = {
      {"smart2-ban-rand",
       "std::rand/srand: implementation-defined stream, hidden global state",
       "draw numbers from a seeded smart2::Rng instead"},
      {"smart2-seed-entropy",
       "entropy-based seeding (std::random_device, time(nullptr)) makes runs "
       "unrepeatable",
       "seed smart2::Rng from an explicit constant or a CLI/env parameter"},
      {"smart2-raw-mt19937",
       "raw <random> engine constructed outside src/common/rng.*; stream and "
       "distributions are not bit-stable across standard libraries",
       "use smart2::Rng (xoshiro256**) and its distribution helpers"},
      {"smart2-unordered-iteration",
       "range-for over an unordered container: iteration order is "
       "implementation-defined and can leak into output",
       "iterate a sorted copy of the keys, or use std::map/std::set when "
       "order reaches any output or accumulation"},
      {"smart2-float-order",
       "library-ordered float fold (std::accumulate/reduce/transform_reduce/"
       "inner_product) or long double in src/ outside the sanctioned "
       "reducers: association order / width is not ours to choose, so sums "
       "drift from the fixed-order scalar and SIMD kernels",
       "sum through smart2::stats (stats::sum / stats::mean), whose "
       "association order is pinned and tested, and use double instead of "
       "long double"},
      {"smart2-fma",
       "std::fma (or __builtin_fma) in src/: fused multiply-add rounds once "
       "where the scalar and SIMD reference kernels round twice, silently "
       "breaking scalar/SIMD bit-identity",
       "write the separate multiply and add (a * b + c); the kernels rely "
       "on two rounding steps and -ffp-contract stays off"},
      {"smart2-raw-thread",
       "raw std::thread/std::async outside src/common/parallel.*; ad-hoc "
       "threads bypass the deterministic fixed-lane pool",
       "use smart2::parallel::parallel_for / parallel_map on the global pool"},
      {"smart2-parallel-mutation",
       "growth mutation (push_back/insert/emplace) of a by-reference capture "
       "inside a parallel body: racy, and element order depends on thread "
       "interleaving",
       "pre-size the container and write index-addressed slots (out[i] = "
       "...); reduce serially after the loop"},
      {"smart2-parallel-callee-mutation",
       "a parallel body calls a function that mutates a by-reference "
       "capture (through a mutable-reference parameter) or a "
       "namespace-scope mutable: the race is one call away but just as "
       "real",
       "pre-size and write index-addressed slots inside the callee, pass a "
       "per-lane slice, or reduce serially after the loop"},
      {"smart2-shared-rng",
       "shared Rng captured by reference in a parallel body: draws race and "
       "their order depends on thread interleaving",
       "fork one substream per work unit before the loop (e.g. "
       "std::vector<Rng> sub = rng-per-unit via Rng::fork()) and index it by "
       "the unit id"},
      {"smart2-span-literal",
       "SMART2_SPAN / obs::counter / obs::histogram called with a computed "
       "or ill-formed name: instrumentation names must be greppable string "
       "literals matching [a-z0-9_.]+ so the trace schema and registry "
       "order never depend on run-time values",
       "pass a single [a-z0-9_.]+ string literal; for a family of related "
       "names, index a constexpr array of literals and construct obs::Span "
       "directly, or suppress one registry lookup with // "
       "NOLINT(smart2-span-literal)"},
      {"smart2-hot-path-alloc",
       "heap allocation inside a function marked // SMART2_HOT",
       "borrow from the thread-local ScratchStack, hoist the container out "
       "of the hot loop, or reserve() it up front"},
      {"smart2-hot-callee-alloc",
       "heap allocation (new / make_unique / unreserved push_back / "
       "std::function construction) inside an unmarked function that the "
       "call graph proves reachable from a hot entry point",
       "hoist the allocation out of the hot closure, borrow from the "
       "thread-local ScratchStack, or mark the function // SMART2_COLD if "
       "it is a deliberate non-steady-state fallback"},
      {"smart2-hot-unmarked",
       "function reachable from a hot entry point (detect / observe / the "
       "batch kernels / any // SMART2_HOT function) without a // SMART2_HOT "
       "marker of its own, so the per-function allocation lint never audits "
       "it",
       "insert // SMART2_HOT on its own line directly above the definition "
       "(or // SMART2_COLD for a deliberate non-steady-state fallback, "
       "which also stops closure traversal through it)"},
      {"smart2-header-guard",
       "header without #pragma once or an #ifndef include guard",
       "add #pragma once as the first non-comment line"},
      {"smart2-using-namespace-header",
       "using namespace in a header leaks the namespace into every includer",
       "qualify names, or move the using-directive into a .cpp file"},
  };
  return kCatalog;
}

bool is_known_rule(std::string_view id) {
  for (const RuleInfo& r : rule_catalog())
    if (r.id == id) return true;
  return false;
}

std::string render_text(const Finding& f) {
  std::ostringstream os;
  os << f.file << ':' << f.line << ':' << f.col << ": [" << f.rule << "] "
     << f.message;
  return os.str();
}

std::size_t LintSummary::unsuppressed_count() const {
  std::size_t n = 0;
  for (const Finding& f : findings)
    if (!f.suppressed) ++n;
  return n;
}

std::size_t LintSummary::actionable_count() const {
  std::size_t n = 0;
  for (const Finding& f : findings)
    if (!f.suppressed && !f.baselined) ++n;
  return n;
}

std::size_t LintSummary::baselined_count() const {
  std::size_t n = 0;
  for (const Finding& f : findings)
    if (f.baselined && !f.suppressed) ++n;
  return n;
}

namespace {

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* kHex = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
          out += kHex[static_cast<unsigned char>(c) & 0xF];
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string to_json(const LintSummary& summary) {
  std::string out;
  out += "{\n";
  out += "  \"tool\": \"smart2_lint\",\n";
  out += "  \"files_scanned\": " + std::to_string(summary.files_scanned) + ",\n";
  out += "  \"total_findings\": " + std::to_string(summary.findings.size()) +
         ",\n";
  out += "  \"unsuppressed_findings\": " +
         std::to_string(summary.unsuppressed_count()) + ",\n";
  out += "  \"baselined_findings\": " +
         std::to_string(summary.baselined_count()) + ",\n";
  out += "  \"actionable_findings\": " +
         std::to_string(summary.actionable_count()) + ",\n";

  out += "  \"stats\": {";
  out += "\"functions\": " + std::to_string(summary.stats.functions);
  out += ", \"graph_nodes\": " + std::to_string(summary.stats.graph_nodes);
  out += ", \"graph_edges\": " + std::to_string(summary.stats.graph_edges);
  out += ", \"hot_seeds\": " + std::to_string(summary.stats.hot_seeds);
  out += ", \"hot_closure\": " + std::to_string(summary.stats.hot_closure);
  out += "},\n";

  // Per-rule counts of actionable findings, sorted by rule id.
  std::map<std::string, std::size_t> counts;
  for (const Finding& f : summary.findings)
    if (!f.suppressed && !f.baselined) ++counts[f.rule];
  out += "  \"counts\": {";
  bool first = true;
  for (const auto& [rule, n] : counts) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, rule);
    out += ": " + std::to_string(n);
  }
  out += "},\n";

  out += "  \"findings\": [";
  for (std::size_t i = 0; i < summary.findings.size(); ++i) {
    const Finding& f = summary.findings[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"file\": ";
    append_json_string(out, f.file);
    out += ", \"line\": " + std::to_string(f.line);
    out += ", \"col\": " + std::to_string(f.col);
    out += ", \"rule\": ";
    append_json_string(out, f.rule);
    out += ", \"message\": ";
    append_json_string(out, f.message);
    out += ", \"fixit\": ";
    append_json_string(out, f.fixit);
    out += ", \"suppressed\": ";
    out += f.suppressed ? "true" : "false";
    out += ", \"baselined\": ";
    out += f.baselined ? "true" : "false";
    out += "}";
  }
  out += summary.findings.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

}  // namespace smart2::lint

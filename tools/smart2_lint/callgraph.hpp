// Project-wide call graph for smart2_lint.
//
// Nodes are distinct scope-qualified names; declarations and definitions
// of the same qualified name (header prototype + source body, overload
// sets) share one node. Edges come from a syntactic call scan over every
// definition body: `name(`, `name<...>(`, `obj.name(`, `ns::name(`.
// Resolution is name-based and deliberately over-approximate — a member
// call resolves to every project function with that simple name — which is
// the safe direction for the hot-path closure (it can only grow).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "smart2_lint/project.hpp"

namespace smart2::lint {

struct CallGraph {
  struct SymRef {
    std::size_t file = 0;  // index into ProjectIndex::files()
    std::size_t sym = 0;   // index into that file's symbols.functions
  };

  struct Node {
    std::string qualified;
    std::string name;        // last component of `qualified`
    bool hot_marked = false;   // any decl/def carries // SMART2_HOT
    bool cold_marked = false;  // any decl/def carries // SMART2_COLD
    std::vector<SymRef> defs;   // definitions (with bodies)
    std::vector<SymRef> decls;  // body-less declarations
    std::vector<std::size_t> callees;  // node ids, sorted, deduped
  };

  std::vector<Node> nodes;  // sorted by qualified name
  std::size_t edge_count = 0;

  /// Node id for a qualified name, or nodes.size().
  std::size_t find(std::string_view qualified) const;

  /// Node ids whose simple name matches `name`; when `qualifier` is
  /// non-empty (the `q` of a `q::name(...)` call), candidates are narrowed
  /// to nodes whose qualified name contains that component pair — unless
  /// the narrowing matches nothing, in which case the name-only candidates
  /// stand (over-approximation wins).
  std::vector<std::size_t> resolve(std::string_view name,
                                   std::string_view qualifier) const;

 private:
  friend CallGraph build_call_graph(const ProjectIndex& index);
  std::multimap<std::string, std::size_t, std::less<>> by_name_;
};

CallGraph build_call_graph(const ProjectIndex& index);

/// Known hot entry points seeded into the closure even without a marker.
bool is_hot_root_name(std::string_view name);

struct HotClosure {
  /// closure[n] is true when node n is hot-reachable.
  std::vector<bool> in_closure;
  /// parent[n]: the node that first reached n in the BFS (n for seeds).
  std::vector<std::size_t> parent;
  std::vector<std::size_t> seeds;
  std::size_t size = 0;
};

/// Transitive callees of every SMART2_HOT-marked node plus the named hot
/// roots, restricted to nodes with at least one definition in analysis
/// scope (src/). SMART2_COLD nodes are barriers: never entered, never
/// traversed through. src/common/parallel.* bodies are pool plumbing and
/// are likewise not traversed.
HotClosure hot_closure(const CallGraph& graph, const ProjectIndex& index);

/// Graphviz dump; closure nodes are highlighted, seeds double-circled.
std::string to_dot(const CallGraph& graph, const HotClosure& closure);

}  // namespace smart2::lint

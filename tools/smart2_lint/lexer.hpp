// Lightweight C++ tokenizer for smart2_lint.
//
// Not a full C++ lexer: it only needs to be exact about what is *code*
// versus what is a comment, string, or preprocessor directive, so the rule
// engine never matches identifiers inside literals (test fixtures embed
// whole "bad" translation units in raw strings) and NOLINT comments can be
// attributed to the right line. Raw strings, digit separators, escape
// sequences and backslash line continuations are handled.
#pragma once

#include <string_view>
#include <vector>

#include "smart2_lint/token.hpp"

namespace smart2::lint {

struct LexResult {
  std::vector<Token> code;     // identifiers / numbers / literals / punct
  std::vector<Token> comments;  // for NOLINT extraction
  std::vector<Token> preproc;   // one per directive (continuations merged)
};

/// Tokenize a source buffer. The buffer must outlive the result.
LexResult lex(std::string_view src);

}  // namespace smart2::lint

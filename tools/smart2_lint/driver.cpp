#include "smart2_lint/driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "smart2_lint/project.hpp"
#include "smart2_lint/rules.hpp"

namespace smart2::lint {
namespace {

namespace fs = std::filesystem;

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh" || ext == ".hxx";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("smart2_lint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

std::vector<std::string> discover_files(
    const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    const fs::path root(p);
    if (fs::is_regular_file(root)) {
      files.push_back(root.generic_string());
      continue;
    }
    if (!fs::is_directory(root))
      throw std::runtime_error("smart2_lint: no such file or directory: " + p);
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      if (!lintable_extension(entry.path())) continue;
      files.push_back(entry.path().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

LintResult lint_paths(const std::vector<std::string>& paths,
                      const LintOptions& options) {
  LintResult result;
  LintSummary& summary = result.summary;

  // One lex + symbol index per file, shared by every pass.
  ProjectIndex index;
  for (const std::string& file : discover_files(paths)) {
    index.add(file, read_file(file));
    ++summary.files_scanned;
  }

  for (const auto& rec : index.files())
    for (Finding& f : lint_file_tokens(rec->path, rec->content, rec->lexed))
      summary.findings.push_back(std::move(f));

  ProjectFindings project = lint_project(index, options.want_dot);
  summary.stats = project.stats;
  result.callgraph_dot = std::move(project.callgraph_dot);
  for (Finding& f : project.findings)
    summary.findings.push_back(std::move(f));

  for (const auto& rec : index.files())
    apply_nolint(rec->lexed, &summary.findings, rec->path);

  if (!options.rules.empty()) {
    const auto keep = [&](const Finding& f) {
      return std::find(options.rules.begin(), options.rules.end(), f.rule) !=
             options.rules.end();
    };
    summary.findings.erase(
        std::remove_if(summary.findings.begin(), summary.findings.end(),
                       [&](const Finding& f) { return !keep(f); }),
        summary.findings.end());
  }

  std::stable_sort(summary.findings.begin(), summary.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     if (a.col != b.col) return a.col < b.col;
                     return a.rule < b.rule;
                   });
  return result;
}

}  // namespace smart2::lint

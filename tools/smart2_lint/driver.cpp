#include "smart2_lint/driver.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "smart2_lint/rules.hpp"

namespace smart2::lint {
namespace {

namespace fs = std::filesystem;

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" ||
         ext == ".h" || ext == ".hh" || ext == ".hxx";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("smart2_lint: cannot read " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

std::vector<std::string> discover_files(
    const std::vector<std::string>& paths) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    const fs::path root(p);
    if (fs::is_regular_file(root)) {
      files.push_back(root.generic_string());
      continue;
    }
    if (!fs::is_directory(root))
      throw std::runtime_error("smart2_lint: no such file or directory: " + p);
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      if (!lintable_extension(entry.path())) continue;
      files.push_back(entry.path().generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

LintSummary lint_paths(const std::vector<std::string>& paths) {
  LintSummary summary;
  for (const std::string& file : discover_files(paths)) {
    const std::string content = read_file(file);
    ++summary.files_scanned;
    for (Finding& f : lint_text(file, content))
      summary.findings.push_back(std::move(f));
  }
  return summary;
}

}  // namespace smart2::lint

// Findings, the rule catalog, and report rendering for smart2_lint.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace smart2::lint {

/// One rule violation at a source location. `suppressed` is true when the
/// line carries a matching NOLINT marker; suppressed findings are kept in
/// the JSON report (so suppressions stay auditable) but do not affect the
/// exit code.
struct Finding {
  std::string file;
  std::size_t line = 0;
  std::size_t col = 0;
  std::string rule;     // e.g. "smart2-ban-rand"
  std::string message;  // what is wrong at this site
  std::string fixit;    // how to repair it
  bool suppressed = false;
};

/// Static description of a rule, for --list-rules and the docs.
struct RuleInfo {
  std::string_view id;
  std::string_view summary;
  std::string_view fixit;
};

/// The full rule catalog, in stable (documentation) order.
const std::vector<RuleInfo>& rule_catalog();

/// True if `id` names a known rule.
bool is_known_rule(std::string_view id);

/// Render one finding as "file:line:col: [rule] message".
std::string render_text(const Finding& f);

/// Aggregate result of a lint run.
struct LintSummary {
  std::size_t files_scanned = 0;
  std::vector<Finding> findings;  // suppressed and unsuppressed, file order

  std::size_t unsuppressed_count() const;
};

/// Serialize a summary as a JSON document (stable key order, findings in
/// input order, per-rule counts sorted by rule id).
std::string to_json(const LintSummary& summary);

}  // namespace smart2::lint

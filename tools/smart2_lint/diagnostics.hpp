// Findings, the rule catalog, and report rendering for smart2_lint.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace smart2::lint {

/// One rule violation at a source location. `suppressed` is true when the
/// line carries a matching NOLINT marker; `baselined` is true when a
/// baseline entry (tools/smart2_lint/baseline.json) accepts it as a known,
/// deliberate exception. Both kinds are kept in the JSON report (so
/// suppressions stay auditable) but do not affect the exit code.
struct Finding {
  std::string file;
  std::size_t line = 0;
  std::size_t col = 0;
  std::string rule;     // e.g. "smart2-ban-rand"
  std::string message;  // what is wrong at this site
  std::string fixit;    // how to repair it
  bool suppressed = false;
  bool baselined = false;
};

/// Static description of a rule, for --list-rules and the docs.
struct RuleInfo {
  std::string_view id;
  std::string_view summary;
  std::string_view fixit;
};

/// The full rule catalog, in stable (documentation) order.
const std::vector<RuleInfo>& rule_catalog();

/// True if `id` names a known rule.
bool is_known_rule(std::string_view id);

/// Render one finding as "file:line:col: [rule] message".
std::string render_text(const Finding& f);

/// Aggregate numbers from the whole-project pass, for --stats and the
/// JSON report.
struct ProjectStats {
  std::size_t functions = 0;    // indexed function symbols (decl + def)
  std::size_t graph_nodes = 0;  // distinct qualified names
  std::size_t graph_edges = 0;  // resolved call edges
  std::size_t hot_seeds = 0;    // SMART2_HOT-marked + named hot roots
  std::size_t hot_closure = 0;  // nodes reachable from the seeds
};

/// Aggregate result of a lint run.
struct LintSummary {
  std::size_t files_scanned = 0;
  std::vector<Finding> findings;  // suppressed and unsuppressed, file order
  ProjectStats stats;

  /// Findings without a NOLINT marker (baselined ones included).
  std::size_t unsuppressed_count() const;
  /// Findings that should fail the run: neither NOLINTed nor baselined.
  std::size_t actionable_count() const;
  /// Findings accepted by the baseline.
  std::size_t baselined_count() const;
};

/// Serialize a summary as a JSON document (stable key order, findings in
/// input order, per-rule counts of actionable findings sorted by rule id).
std::string to_json(const LintSummary& summary);

}  // namespace smart2::lint

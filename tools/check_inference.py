#!/usr/bin/env python3
"""Gate the compiled-inference perf smoke.

Usage: check_inference.py BENCH_INFERENCE_JSON

Reads the summary bench_inference writes (one JSON object with a "models"
list of {model, allocating_ns, interpreted_ns, compiled_ns, speedup}) and
fails when the compiled path is slower than the interpreted path on any of
the models whose lowerings promise a win (J48, JRip, Bagging(J48),
AdaBoost(OneR)) — a regression there means the flattened layouts stopped
paying for themselves. Exits nonzero with an explanatory assertion on any
mismatch. Used by the CI build-test job.
"""
import json
import sys

GATED_TREE_MODELS = {"J48", "JRip", "Bagging(J48)", "AdaBoost(OneR)"}


def check(path):
    with open(path) as f:
        summary = json.load(f)
    by_name = {m["model"]: m for m in summary["models"]}
    missing = GATED_TREE_MODELS - set(by_name)
    assert not missing, f"bench_inference summary lacks models: {missing}"
    for name in sorted(GATED_TREE_MODELS):
        m = by_name[name]
        assert m["compiled_ns"] > 0, m
        assert m["compiled_ns"] <= m["interpreted_ns"], (
            f"{name}: compiled path ({m['compiled_ns']} ns/sample) is slower "
            f"than interpreted ({m['interpreted_ns']} ns/sample)"
        )
        print(
            f"ok: {name}: compiled {m['compiled_ns']} ns <= "
            f"interpreted {m['interpreted_ns']} ns "
            f"({m['speedup']:.2f}x)"
        )
    print(f"checked {len(GATED_TREE_MODELS)} gated models: OK")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    check(sys.argv[1])

#!/usr/bin/env python3
"""Gate the compiled-inference perf smoke.

Usage: check_inference.py [--min-pipeline-batch-speedup X] BENCH_INFERENCE_JSON

Reads the summary bench_inference writes (one JSON object with a "models"
list of {model, allocating_ns, interpreted_ns, compiled_ns, speedup,
batch: [{n, scalar_ns, simd_ns}]}) and fails when:

  * the best compiled way to evaluate samples — per-sample eval or the
    batched path at any swept batch size, whichever is fastest — loses
    to the interpreted per-sample loop on any of the models whose
    lowerings promise a win (J48, JRip, Bagging(J48), AdaBoost(OneR),
    MLR).
    The single-sample compiled-vs-interpreted margin on the small rule /
    ensemble models is single-digit nanoseconds and flips with host and
    ISA flags, so the primary gate compares the batched form (the
    production shape) which wins by integer factors; a loose 1.5x
    single-sample ceiling still catches a per-sample collapse;
  * the SIMD batch path loses to the scalar-forced batch path at *every*
    large batch size (n >= 64) on any model (10% timer-noise tolerance
    on the matched-n ratio). A single batch point can swing +-30% from
    frequency / thermal drift between the scalar and SIMD sweeps, but a
    genuinely slower vector kernel loses at every size, so the gate
    takes the best matched-n ratio across the large sizes — the vector
    kernels must never lose to their own scalar fallback;
  * with --min-pipeline-batch-speedup X (the AVX2 CI job and local runs on
    vector hardware): TwoStageHmd's batched SIMD path at batch >= 256 is
    not at least X times faster than the per-sample compiled detect loop.

Exits nonzero with an explanatory assertion on any mismatch. Used by the
CI build-test / simd jobs.
"""
import argparse
import json

GATED_TREE_MODELS = {"J48", "JRip", "Bagging(J48)", "AdaBoost(OneR)", "MLR"}

# Per-sample compiled may trail per-sample interpreted by jitter on tiny
# models (a few ns of virtual-dispatch / arena bookkeeping); it must
# never collapse.
COMPILED_SINGLE_SAMPLE_TOLERANCE = 1.5

# Timer-noise headroom for the simd <= scalar gate: models without a
# dedicated SIMD kernel (NaiveBayes) run the identical row loop in both
# modes, so only measurement jitter separates them.
SIMD_VS_SCALAR_TOLERANCE = 1.10

# Batch sizes below this are dominated by per-call setup, not kernel
# throughput; the simd <= scalar gate only considers points at or above.
SIMD_GATE_MIN_BATCH = 64


def check(path, min_pipeline_batch_speedup=None):
    with open(path) as f:
        summary = json.load(f)
    by_name = {m["model"]: m for m in summary["models"]}
    missing = GATED_TREE_MODELS - set(by_name)
    assert not missing, f"bench_inference summary lacks models: {missing}"
    for name in sorted(GATED_TREE_MODELS):
        m = by_name[name]
        assert m["compiled_ns"] > 0, m
        batch = m.get("batch") or []
        best = min(
            [m["compiled_ns"]]
            + [min(p["scalar_ns"], p["simd_ns"]) for p in batch]
        )
        assert best <= m["interpreted_ns"], (
            f"{name}: best compiled path ({best} ns/sample) is slower than "
            f"interpreted ({m['interpreted_ns']} ns/sample)"
        )
        assert (
            m["compiled_ns"]
            <= m["interpreted_ns"] * COMPILED_SINGLE_SAMPLE_TOLERANCE
        ), (
            f"{name}: per-sample compiled path ({m['compiled_ns']} "
            f"ns/sample) collapsed vs interpreted ({m['interpreted_ns']} "
            f"ns/sample)"
        )
        print(
            f"ok: {name}: best compiled {best} ns <= "
            f"interpreted {m['interpreted_ns']} ns "
            f"(per-sample compiled {m['compiled_ns']} ns)"
        )
    print(f"checked {len(GATED_TREE_MODELS)} gated models: OK")

    isa = summary.get("simd_isa", "?")
    lanes = summary.get("simd_lanes", "?")
    batch_checked = 0
    for m in summary["models"]:
        batch = m.get("batch") or []
        if not batch:
            continue
        large = [p for p in batch if p["n"] >= SIMD_GATE_MIN_BATCH]
        assert large, f"{m['model']}: no batch point with n >= {SIMD_GATE_MIN_BATCH}"
        assert all(p["simd_ns"] > 0 and p["scalar_ns"] > 0 for p in large), m
        best = min(large, key=lambda point: point["simd_ns"] / point["scalar_ns"])
        assert (
            best["simd_ns"] <= best["scalar_ns"] * SIMD_VS_SCALAR_TOLERANCE
        ), (
            f"{m['model']}: SIMD batch path is slower than the scalar-forced "
            f"path at every batch size >= {SIMD_GATE_MIN_BATCH} (closest: "
            f"{best['simd_ns']} vs {best['scalar_ns']} ns/sample at "
            f"n={best['n']}, isa={isa})"
        )
        print(
            f"ok: {m['model']}: batch n={best['n']} simd {best['simd_ns']} ns"
            f" <= scalar {best['scalar_ns']} ns (isa={isa}, lanes={lanes})"
        )
        batch_checked += 1
    assert batch_checked > 0, "summary has no batch sweep data"
    print(f"checked {batch_checked} batch sweeps: OK")

    if min_pipeline_batch_speedup is not None:
        pipe = by_name["TwoStageHmd"]
        points = [p for p in pipe.get("batch") or [] if p["n"] >= 256]
        assert points, "TwoStageHmd sweep has no batch size >= 256"
        best = min(p["simd_ns"] for p in points)
        assert best > 0, pipe
        speedup = pipe["compiled_ns"] / best
        assert speedup >= min_pipeline_batch_speedup, (
            f"TwoStageHmd: batched SIMD path ({best} ns/sample at batch >= "
            f"256) is only {speedup:.2f}x the per-sample compiled loop "
            f"({pipe['compiled_ns']} ns/sample); need "
            f">= {min_pipeline_batch_speedup}x"
        )
        print(
            f"ok: TwoStageHmd: batch {best} ns vs per-sample "
            f"{pipe['compiled_ns']} ns = {speedup:.2f}x "
            f">= {min_pipeline_batch_speedup}x"
        )


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("summary", help="BENCH_inference.json path")
    parser.add_argument(
        "--min-pipeline-batch-speedup",
        type=float,
        default=None,
        help="require TwoStageHmd batch>=256 SIMD ns to beat the per-sample "
        "compiled loop by this factor (only meaningful on vector hardware)",
    )
    args = parser.parse_args()
    check(args.summary, args.min_pipeline_batch_speedup)

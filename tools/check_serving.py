#!/usr/bin/env python3
"""Gate the streaming-service perf smoke.

Usage: check_serving.py [--min-streams N] [--min-speedup X]
                        [--max-kernel-ratio X] BENCH_SERVING_JSON

Reads the summary bench_serving writes (one JSON object; schema below) and
fails when:

  * the run simulated fewer than --min-streams concurrent streams (default
    100000 — the serving target the bench exists to demonstrate);
  * the backpressure accounting identity is violated: after a full drain
    every submitted sample must be either scored or dropped, so
    submitted == verdicts + dropped for BOTH drop policies (kDropNewest
    rejects arrivals, kDropOldest displaces queue heads; either way the
    identity holds — SERVING.md "Backpressure and the drop policy");
  * the epoch-batched service is slower than the per-sample baseline (one
    OnlineDetector per stream driven window by window — the pre-existing
    way to monitor a fleet). Both sides are best-of measurements, but the
    1-CPU CI runner still jitters the ratio, so the gate allows serving to
    trail by SPEEDUP_TOLERANCE before failing; --min-speedup raises the
    bar on quiet hardware;
  * the serving overhead over the same-run raw epoch kernel exceeds
    --max-kernel-ratio (serving_ns_per_sample / kernel_ns_per_sample; the
    kernel floor is measured in the same process on the same windows, so
    the ratio cancels machine speed and isolates the service's own ring /
    index / verdict cost);
  * the latency percentiles are missing, not monotone (p50 <= p99 <=
    p999), or fully degenerate (p50 == p999): the fine log-linear
    histogram layout (~3% buckets; OBSERVABILITY.md "Histogram buckets")
    must distinguish the tail from the median;
  * the per-phase breakdown (phases.{ingest,index,infer,verdict}
    _ns_per_sample) is missing or carries a negative value;
  * the mid-run hot swap did not happen (generations must reach >= 2).

Exits nonzero with an explanatory assertion on any mismatch. Used by the
CI serving smoke job.
"""
import argparse
import json

# The serving path must not lose to the per-sample loop. Tolerance covers
# scheduler jitter between the two best-of measurements on shared CI
# hardware; a real regression (the batch path collapsing to per-sample
# cost plus overhead) overshoots it by far.
SPEEDUP_TOLERANCE = 1.10

REQUIRED_FIELDS = [
    "streams", "shards", "ticks", "queue_capacity", "submitted", "accepted",
    "dropped", "admitted", "evicted", "alarms", "verdicts", "generations",
    "wall_seconds", "samples_per_sec", "serving_ns_per_sample",
    "baseline_ns_per_sample", "kernel_ns_per_sample", "phases",
    "latency_p50_ns", "latency_p99_ns", "latency_p999_ns",
]

PHASE_FIELDS = [
    "ingest_ns_per_sample", "index_ns_per_sample", "infer_ns_per_sample",
    "verdict_ns_per_sample",
]


def check(path, min_streams, min_speedup, max_kernel_ratio):
    with open(path) as f:
        summary = json.load(f)
    missing = [k for k in REQUIRED_FIELDS if k not in summary]
    assert not missing, f"BENCH_serving.json lacks fields: {missing}"

    streams = summary["streams"]
    assert streams >= min_streams, (
        f"simulated only {streams} concurrent streams; the serving smoke "
        f"must demonstrate >= {min_streams}"
    )
    print(f"ok: {streams} simulated concurrent streams over "
          f"{summary['shards']} shards")

    submitted = summary["submitted"]
    verdicts = summary["verdicts"]
    dropped = summary["dropped"]
    assert submitted == verdicts + dropped, (
        f"backpressure accounting broken: submitted {submitted} != "
        f"verdicts {verdicts} + dropped {dropped}"
    )
    print(f"ok: accounting: submitted {submitted} == "
          f"verdicts {verdicts} + dropped {dropped}")

    serving_ns = summary["serving_ns_per_sample"]
    baseline_ns = summary["baseline_ns_per_sample"]
    assert serving_ns > 0 and baseline_ns > 0, summary
    assert serving_ns <= baseline_ns * SPEEDUP_TOLERANCE, (
        f"epoch-batched serving ({serving_ns} ns/sample) is slower than the "
        f"per-sample OnlineDetector baseline ({baseline_ns} ns/sample) "
        f"beyond the {SPEEDUP_TOLERANCE}x jitter tolerance"
    )
    speedup = baseline_ns / serving_ns
    if min_speedup is not None:
        assert speedup >= min_speedup, (
            f"serving speedup {speedup:.2f}x below required "
            f"{min_speedup}x (serving {serving_ns} vs baseline "
            f"{baseline_ns} ns/sample)"
        )
    print(f"ok: serving {serving_ns} ns/sample vs per-sample baseline "
          f"{baseline_ns} ns/sample ({speedup:.2f}x, "
          f"{summary['samples_per_sec']:.0f} sustained samples/sec)")

    kernel_ns = summary["kernel_ns_per_sample"]
    assert kernel_ns > 0, summary
    ratio = serving_ns / kernel_ns
    if max_kernel_ratio is not None:
        assert ratio <= max_kernel_ratio, (
            f"serving overhead {ratio:.2f}x over the same-run epoch kernel "
            f"(serving {serving_ns} vs kernel {kernel_ns} ns/sample) exceeds "
            f"the {max_kernel_ratio}x budget: the ring/index/verdict data "
            f"path got more expensive relative to raw inference"
        )
    print(f"ok: serving overhead {ratio:.2f}x over the same-run kernel "
          f"floor ({kernel_ns} ns/sample)")

    phases = summary["phases"]
    missing_phases = [k for k in PHASE_FIELDS if k not in phases]
    assert not missing_phases, f"phases lacks fields: {missing_phases}"
    assert all(phases[k] >= 0 for k in PHASE_FIELDS), phases
    print("ok: phase breakdown " +
          ", ".join(f"{k.split('_')[0]} {phases[k]}" for k in PHASE_FIELDS) +
          " ns/sample")

    p50 = summary["latency_p50_ns"]
    p99 = summary["latency_p99_ns"]
    p999 = summary["latency_p999_ns"]
    assert 0 < p50 <= p99 <= p999, (
        f"latency percentiles not monotone: p50 {p50}, p99 {p99}, p999 {p999}"
    )
    assert p50 < p999, (
        f"latency percentiles fully degenerate (p50 == p999 == {p50} ns): "
        f"the fine histogram layout must distinguish the tail from the "
        f"median — is serve.verdict.latency still on the fine layout?"
    )
    print(f"ok: verdict latency p50 <= {p50} ns, p99 <= {p99} ns, "
          f"p999 <= {p999} ns (fine-bucket upper bounds)")

    generations = summary["generations"]
    assert generations >= 2, (
        f"hot swap never happened: still generation {generations}"
    )
    print(f"ok: hot model swap mid-run (generation {generations} at exit)")
    print("serving smoke: OK")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("summary", help="BENCH_serving.json path")
    parser.add_argument(
        "--min-streams",
        type=int,
        default=100_000,
        help="minimum simulated concurrent streams (default 100000)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="require serving to beat the per-sample baseline by this factor "
        "(only meaningful on quiet hardware)",
    )
    parser.add_argument(
        "--max-kernel-ratio",
        type=float,
        default=None,
        help="cap serving_ns_per_sample / kernel_ns_per_sample; the kernel "
        "is measured in the same run, so this gate is machine-independent",
    )
    args = parser.parse_args()
    check(args.summary, args.min_streams, args.min_speedup,
          args.max_kernel_ratio)

#!/usr/bin/env python3
"""Smoke-check a smart2 obs trace and the bench phase ledger.

Usage: check_trace.py TRACE_JSONL [BENCH_TIMINGS_JSON]

Asserts the JSON-lines schema documented in OBSERVABILITY.md: a meta line,
span lines whose volatile fields sit inside "timing", counter and hist
lines, span names from the stage1./stage2. families, and (optionally) a
"phases" breakdown in at least one bench ledger line. Exits nonzero with
an explanatory assertion on any mismatch. Used by the CI build-test job.
"""
import json
import sys


def check_trace(path):
    types = set()
    names = set()
    with open(path) as f:
        for line in f:
            rec = json.loads(line)
            types.add(rec["type"])
            if rec["type"] == "meta":
                assert set(rec["env"]) == {"threads", "cpu_time"}, rec
            if rec["type"] == "span":
                assert set(rec) >= {"id", "parent", "name", "timing"}, rec
                assert set(rec["timing"]) == {"start_ns", "dur_ns", "cpu_ns"}, rec
                names.add(rec["name"])
            if rec["type"] == "counter":
                assert rec["value"] > 0, rec
            if rec["type"] == "hist":
                # 9 = decade layout, 993 = fine (log-linear) layout; see
                # OBSERVABILITY.md "Histogram buckets".
                assert len(rec["timing"]["buckets"]) in (9, 993), rec
                assert rec["count"] == sum(rec["timing"]["buckets"]), rec
    assert types == {"meta", "span", "counter", "hist"}, types
    assert any(n.startswith("stage1.") for n in names), names
    assert any(n.startswith("stage2.") for n in names), names
    return names


def check_ledger(path):
    with open(path) as f:
        ledger = [json.loads(line) for line in f]
    assert any("phases" in rec for rec in ledger), ledger
    phases = next(rec["phases"] for rec in ledger if "phases" in rec)
    assert all(secs >= 0.0 for secs in phases.values()), phases
    return phases


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    names = check_trace(argv[1])
    msg = f"obs smoke OK: {len(names)} distinct span names"
    if len(argv) == 3:
        phases = check_ledger(argv[2])
        msg += f", phases: {sorted(phases)}"
    print(msg)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

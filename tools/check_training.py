#!/usr/bin/env python3
"""Gate the training-engine perf smoke.

Usage: check_training.py BENCH_TRAINING_JSON

Reads the summary bench_training writes (one JSON object with a "models"
list of {model, threads, legacy_ns, presorted_ns, speedup}) and fails when
the presorted columnar engine is slower than the legacy per-node-sort
engine on any of the sort-heavy fits it exists to accelerate (J48,
Bagging(J48), AdaBoost(J48)), at any measured thread count. Exits nonzero
with an explanatory assertion on any regression. Used by the CI build-test
job.
"""
import json
import sys

GATED_TRAIN_MODELS = {"J48", "Bagging(J48)", "AdaBoost(J48)"}


def check(path):
    with open(path) as f:
        summary = json.load(f)
    rows = [m for m in summary["models"] if m["model"] in GATED_TRAIN_MODELS]
    seen = {m["model"] for m in rows}
    missing = GATED_TRAIN_MODELS - seen
    assert not missing, f"bench_training summary lacks models: {missing}"
    for m in sorted(rows, key=lambda m: (m["model"], m["threads"])):
        assert m["presorted_ns"] > 0, m
        assert m["presorted_ns"] <= m["legacy_ns"], (
            f"{m['model']} @ {m['threads']} threads: presorted engine "
            f"({m['presorted_ns']} ns/fit) is slower than legacy "
            f"({m['legacy_ns']} ns/fit)"
        )
        print(
            f"ok: {m['model']} @ {m['threads']} threads: presorted "
            f"{m['presorted_ns']} ns <= legacy {m['legacy_ns']} ns "
            f"({m['speedup']:.2f}x)"
        )
    print(f"checked {len(rows)} gated rows: OK")


if __name__ == "__main__":
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    check(sys.argv[1])

#!/usr/bin/env python3
"""Gate the quantized-inference perf / quality smoke.

Usage: check_quantized.py [--min-int8-speedup X] BENCH_QUANTIZED_JSON

Reads the summary bench_quantized writes (one JSON object with a
"pipeline" timing block and a "families" bit-width sweep) and fails when:

  * with --min-int8-speedup X (the AVX2 CI job and local runs on vector
    hardware): the int8 quantized batched pipeline is not at least X times
    faster than the double SIMD predict_batch path at batch 256 (ns/sample
    ratio measured in the same run, so host frequency drift cancels);
  * the int16 quantized path is slower than the double SIMD path at all —
    int16 keeps every fraction bit the auto-fit proved the features need,
    so it has no accuracy excuse and must win outright (10% timer-noise
    tolerance);
  * any stage-2 family's mean F-measure at width 16 / width 8 degrades
    from the double baseline by more than the budget the JSON itself
    declares (fmeasure_budget.int16 / .int8) — the bench binary and this
    gate share one set of numbers, printed next to the sweep table;
  * the sweep is missing a family or one of the gated widths.

Exits nonzero with an explanatory assertion on any mismatch. Used by the
CI quant-smoke job.
"""
import argparse
import json

EXPECTED_FAMILIES = {"J48", "JRip", "MLP", "OneR"}

# int16 carries full fraction precision; it only needs headroom for timer
# noise against the double SIMD baseline, not an accuracy allowance.
INT16_VS_DOUBLE_TOLERANCE = 1.10


def check(path, min_int8_speedup=None):
    with open(path) as f:
        summary = json.load(f)

    pipe = summary["pipeline"]
    assert pipe["double_simd_ns"] > 0 and pipe["int8_simd_ns"] > 0, pipe
    assert pipe["int16_simd_ns"] > 0, pipe

    assert pipe["int16_simd_ns"] <= (
        pipe["double_simd_ns"] * INT16_VS_DOUBLE_TOLERANCE
    ), (
        f"int16 quantized pipeline ({pipe['int16_simd_ns']} ns/sample) is "
        f"slower than the double SIMD path ({pipe['double_simd_ns']} "
        f"ns/sample) at batch {pipe['batch_n']}"
    )
    print(
        f"ok: int16 {pipe['int16_simd_ns']} ns <= double SIMD "
        f"{pipe['double_simd_ns']} ns at batch {pipe['batch_n']}"
    )

    if min_int8_speedup is not None:
        speedup = pipe["double_simd_ns"] / pipe["int8_simd_ns"]
        assert speedup >= min_int8_speedup, (
            f"int8 quantized pipeline ({pipe['int8_simd_ns']} ns/sample) is "
            f"only {speedup:.2f}x the double SIMD path "
            f"({pipe['double_simd_ns']} ns/sample) at batch "
            f"{pipe['batch_n']}; need >= {min_int8_speedup}x"
        )
        print(
            f"ok: int8 {pipe['int8_simd_ns']} ns vs double SIMD "
            f"{pipe['double_simd_ns']} ns = {speedup:.2f}x "
            f">= {min_int8_speedup}x"
        )

    budget = summary["fmeasure_budget"]
    assert budget["int16"] > 0 and budget["int8"] > 0, budget
    families = {f["model"]: f for f in summary["families"]}
    missing = EXPECTED_FAMILIES - set(families)
    assert not missing, f"bench_quantized summary lacks families: {missing}"
    for name in sorted(EXPECTED_FAMILIES):
        fam = families[name]
        widths = {p["width"]: p["f_measure"] for p in fam["widths"]}
        for width, allowed in ((16, budget["int16"]), (8, budget["int8"])):
            assert width in widths, f"{name}: sweep lacks width {width}"
            drop = fam["double_f"] - widths[width]
            assert drop <= allowed, (
                f"{name}: width-{width} mean F-measure {widths[width]:.4f} "
                f"degrades {drop:.4f} from the double baseline "
                f"{fam['double_f']:.4f}; budget is {allowed}"
            )
            print(
                f"ok: {name}: w{width} F {widths[width]:.4f} within "
                f"{allowed} of double {fam['double_f']:.4f} "
                f"(drop {drop:+.4f})"
            )
    print(f"checked {len(EXPECTED_FAMILIES)} families: OK")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("summary", help="BENCH_quantized.json path")
    parser.add_argument(
        "--min-int8-speedup",
        type=float,
        default=None,
        help="require the int8 batched pipeline to beat the double SIMD "
        "path by this factor (only meaningful on vector hardware)",
    )
    args = parser.parse_args()
    check(args.summary, args.min_int8_speedup)

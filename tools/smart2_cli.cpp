// smart2 — command-line front end for the 2SMaRT reproduction.
//
//   smart2 profile  --out data.csv [--scale 0.25] [--seed 42]
//   smart2 train    --data data.csv --out pipeline.smart2
//                   [--features common4|custom8|top16] [--boost]
//                   [--model J48|JRip|MLP|OneR] [--split 0.6] [--seed 42]
//   smart2 evaluate --data data.csv --pipeline pipeline.smart2
//                   [--split 0.6] [--seed 42]
//   smart2 detect   --data data.csv --pipeline pipeline.smart2 --row N
//   smart2 crossval --data data.csv --model J48 [--folds 5] [--class Trojan]
//                   [--boost] [--seed 42]
//   smart2 info     --pipeline pipeline.smart2
//   smart2 export-verilog --data data.csv --pipeline pipeline.smart2
//                   --out dir
//
// `profile` simulates the paper's data-collection protocol and writes the
// 44-event dataset as CSV; every other subcommand consumes that CSV.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/two_stage.hpp"
#include "ml/cross_validation.hpp"
#include "hpc/dataset_cache.hpp"
#include "hw/verilog_gen.hpp"
#include "uarch/events.hpp"

using namespace smart2;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool has(const std::string& key) const { return options.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback = "") const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double num(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::atof(it->second.c_str());
  }
  std::string require(const std::string& key) const {
    const auto it = options.find(key);
    if (it == options.end()) {
      std::fprintf(stderr, "error: missing --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }
};

Args parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) continue;
    token = token.substr(2);
    if (token == "boost") {
      args.options["boost"] = "1";
    } else if (i + 1 < argc) {
      args.options[token] = argv[++i];
    }
  }
  return args;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: smart2 "
      "<profile|train|evaluate|detect|crossval|info|export-verilog> "
      "[options]\n"
      "run `smart2 <command>` without required options for details\n");
  return 2;
}

std::pair<Dataset, Dataset> split_of(const Dataset& d, const Args& args) {
  Rng rng(static_cast<std::uint64_t>(args.num("seed", 42)));
  return d.stratified_split(args.num("split", 0.6), rng);
}

TwoStageConfig config_of(const Args& args) {
  TwoStageConfig cfg;
  const std::string features = args.get("features", "common4");
  if (features == "common4") cfg.stage2_features = Stage2Features::kCommon4;
  else if (features == "custom8") cfg.stage2_features = Stage2Features::kCustom8;
  else if (features == "top16") cfg.stage2_features = Stage2Features::kTop16;
  else {
    std::fprintf(stderr, "error: unknown --features %s\n", features.c_str());
    std::exit(2);
  }
  cfg.boost = args.has("boost");
  cfg.stage2_model = args.get("model");
  return cfg;
}

int cmd_profile(const Args& args) {
  const std::string out = args.require("out");
  CorpusConfig corpus;
  corpus.scale = args.num("scale", 0.25);
  corpus.seed = static_cast<std::uint64_t>(args.num("seed", 42));
  CollectorConfig coll;
  coll.registers = static_cast<std::size_t>(args.num("registers", 4));

  std::printf("profiling %zu-ish applications (scale %.2f, %zu HPC "
              "registers, %zu runs per app)...\n",
              build_corpus(corpus).size(), corpus.scale, coll.registers,
              HpcCollector(coll).batches_for_all_events());
  const Dataset d = cached_hpc_dataset(corpus, coll, /*cache_dir=*/"");
  save_dataset_csv(out, d);
  std::printf("wrote %s (%zu rows x %zu events)\n", out.c_str(), d.size(),
              d.feature_count());
  return 0;
}

int cmd_train(const Args& args) {
  const Dataset d = load_dataset_csv(args.require("data"));
  const auto [train, test] = split_of(d, args);
  TwoStageHmd hmd(config_of(args));
  std::printf("training on %zu applications...\n", train.size());
  hmd.train(train);

  const std::string out = args.require("out");
  hmd.save_file(out);
  std::printf("pipeline saved to %s\n", out.c_str());

  const TwoStageEval eval = evaluate_two_stage(hmd, test);
  std::printf("held-out check (%zu apps): 5-way accuracy %.1f%%\n",
              test.size(), 100.0 * eval.multiclass_accuracy);
  return 0;
}

int cmd_evaluate(const Args& args) {
  const Dataset d = load_dataset_csv(args.require("data"));
  const auto [train, test] = split_of(d, args);
  const TwoStageHmd hmd = TwoStageHmd::load_file(args.require("pipeline"));

  const TwoStageEval eval = evaluate_two_stage(hmd, test);
  std::printf("%-10s %8s %8s %8s %8s\n", "class", "F", "AUC", "perf",
              "recall");
  for (std::size_t m = 0; m < kNumMalwareClasses; ++m) {
    const auto& ev = eval.per_class[m];
    std::printf("%-10s %7.1f%% %8.3f %7.1f%% %7.1f%%\n",
                to_string(kMalwareClasses[m]).data(), 100.0 * ev.f_measure,
                ev.auc, 100.0 * ev.performance, 100.0 * ev.recall);
  }
  std::printf("5-way accuracy: %.1f%% on %zu held-out applications\n",
              100.0 * eval.multiclass_accuracy, test.size());
  return 0;
}

int cmd_detect(const Args& args) {
  const Dataset d = load_dataset_csv(args.require("data"));
  const TwoStageHmd hmd = TwoStageHmd::load_file(args.require("pipeline"));
  const auto row = static_cast<std::size_t>(args.num("row", 0));
  if (row >= d.size()) {
    std::fprintf(stderr, "error: row %zu out of range (%zu rows)\n", row,
                 d.size());
    return 2;
  }
  const Detection det = hmd.detect(d.features(row));
  std::printf("row %zu: actual=%s\n", row,
              d.class_names().at(static_cast<std::size_t>(d.label(row)))
                  .c_str());
  std::printf("verdict: %s", det.is_malware ? "MALWARE" : "benign");
  if (det.is_malware)
    std::printf(" (%s)", to_string(det.predicted_class).data());
  std::printf("\nstage-1 confidence %.3f, stage-2 score %.3f\n",
              det.stage1_confidence, det.stage2_score);
  return det.is_malware ? 1 : 0;
}

int cmd_crossval(const Args& args) {
  const Dataset d = load_dataset_csv(args.require("data"));
  const std::string model_name = args.get("model", "J48");
  const auto folds = static_cast<std::size_t>(args.num("folds", 5));
  Rng rng(static_cast<std::uint64_t>(args.num("seed", 42)));

  const auto cls = app_class_from_string(args.get("class", "Trojan"));
  if (!cls || *cls == AppClass::kBenign) {
    std::fprintf(stderr, "error: --class must name a malware class\n");
    return 2;
  }
  const FeaturePlan plan = paper_feature_plan(d);
  const Dataset binary = d.binary_view(label_of(*cls), 0)
                             .select_features(plan.common);
  auto proto = args.has("boost") ? make_boosted(model_name)
                                 : make_classifier(model_name);
  const auto cv = cross_validate_binary(*proto, binary, folds, rng);
  std::printf("%zu-fold CV of %s%s on %s (4 Common HPCs, %zu apps):\n",
              folds, model_name.c_str(), args.has("boost") ? "+AdaBoost" : "",
              to_string(*cls).data(), binary.size());
  std::printf("  F = %.1f%% +- %.1f   AUC = %.3f   F x AUC = %.1f%%\n",
              100.0 * cv.mean.f_measure, 100.0 * cv.f_stddev, cv.mean.auc,
              100.0 * cv.mean.performance);
  for (std::size_t f = 0; f < cv.folds.size(); ++f)
    std::printf("  fold %zu: F=%.1f%% AUC=%.3f\n", f + 1,
                100.0 * cv.folds[f].f_measure, cv.folds[f].auc);
  return 0;
}

int cmd_info(const Args& args) {
  const TwoStageHmd hmd = TwoStageHmd::load_file(args.require("pipeline"));
  std::printf("2SMaRT pipeline\n");
  std::printf("  stage-2 features: %s%s\n",
              to_string(hmd.config().stage2_features).data(),
              hmd.config().boost ? " + AdaBoost" : "");
  std::printf("  common events:");
  for (std::size_t f : hmd.plan().common)
    std::printf(" %s", event_short_name(event_at(f)).data());
  std::printf("\n  stage-2 detectors:\n");
  for (AppClass c : kMalwareClasses) {
    std::printf("    %-8s %s, events:", to_string(c).data(),
                hmd.stage2_model_name(c).c_str());
    for (std::size_t f : hmd.stage2_feature_indices(c))
      std::printf(" %s", event_short_name(event_at(f)).data());
    std::printf("\n");
  }
  return 0;
}

int cmd_export_verilog(const Args& args) {
  const Dataset d = load_dataset_csv(args.require("data"));
  const TwoStageHmd hmd = TwoStageHmd::load_file(args.require("pipeline"));
  const std::string out_dir = args.require("out");
  std::filesystem::create_directories(out_dir);

  const Dataset common_ref = d.select_features(hmd.plan().common);
  VerilogOptions opt;
  opt.scale_reference = &common_ref;

  auto emit = [&](const Classifier& model, const std::string& name,
                  const Dataset& ref) {
    VerilogOptions local = opt;
    local.scale_reference = &ref;
    try {
      const VerilogModule module = generate_verilog(model, name, local);
      const std::string problem = verilog_lint(module);
      if (!problem.empty()) {
        std::printf("  %-24s lint failed: %s\n", name.c_str(),
                    problem.c_str());
        return;
      }
      std::ofstream(out_dir + "/" + name + ".v") << module.source;
      std::printf("  %-24s -> %s/%s.v\n", name.c_str(), out_dir.c_str(),
                  name.c_str());
    } catch (const std::invalid_argument& e) {
      std::printf("  %-24s skipped (%s)\n", name.c_str(), e.what());
    }
  };

  emit(hmd.stage1(), "stage1_mlr", common_ref);
  for (AppClass c : kMalwareClasses) {
    const Dataset ref = d.select_features(hmd.stage2_feature_indices(c));
    emit(hmd.stage2(c), "stage2_" + std::string(to_string(c)), ref);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  if (args.command == "profile") return cmd_profile(args);
  if (args.command == "train") return cmd_train(args);
  if (args.command == "evaluate") return cmd_evaluate(args);
  if (args.command == "detect") return cmd_detect(args);
  if (args.command == "crossval") return cmd_crossval(args);
  if (args.command == "info") return cmd_info(args);
  if (args.command == "export-verilog") return cmd_export_verilog(args);
  return usage();
}

// smart2_lint rule-engine tests: inline good/bad fixture snippets run
// through lint_text(), asserting rule IDs, locations, and NOLINT
// suppression. Fixtures live in raw strings, which doubles as a lexer
// regression test: when the linter self-scans this file, none of the
// deliberately bad code below may produce a finding, because all of it is
// string-literal content.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "smart2_lint/baseline.hpp"
#include "smart2_lint/callgraph.hpp"
#include "smart2_lint/diagnostics.hpp"
#include "smart2_lint/project.hpp"
#include "smart2_lint/rules.hpp"

namespace smart2::lint {
namespace {

std::vector<Finding> active(std::string_view path, std::string_view src) {
  std::vector<Finding> out;
  for (Finding& f : lint_text(path, src))
    if (!f.suppressed) out.push_back(std::move(f));
  return out;
}

/// Multi-file variant: per-file AND interprocedural rules, NOLINT applied.
std::vector<Finding> active_files(
    std::vector<std::pair<std::string, std::string>> files) {
  std::vector<Finding> out;
  for (Finding& f : lint_files(files))
    if (!f.suppressed) out.push_back(std::move(f));
  return out;
}

std::size_t count_rule(const std::vector<Finding>& fs, std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// ------------------------------------------------------------ determinism

TEST(LintBanRand, FlagsStdRandAndSrand) {
  const auto fs = active("a.cpp", R"cpp(int f() {
  srand(42);
  return std::rand();
}
)cpp");
  ASSERT_EQ(count_rule(fs, "smart2-ban-rand"), 2u);
  EXPECT_EQ(fs[0].line, 2u);
  EXPECT_EQ(fs[0].col, 3u);
  EXPECT_EQ(fs[1].line, 3u);
}

TEST(LintBanRand, IgnoresVariablesAndMembersNamedRand) {
  const auto fs = active("a.cpp", R"cpp(struct G { int rand() { return 4; } };
int f(G& g) {
  int rand = g.rand();
  return rand;
}
)cpp");
  // g.rand() is a member call; `int rand` is a variable; the struct's own
  // declaration is neither called nor std-qualified at its site... except
  // `int rand()` inside the struct *is* an identifier followed by '(' --
  // a known, documented over-approximation handled via NOLINT in real
  // code. Assert only that the member call and variable are clean.
  for (const Finding& f : fs) EXPECT_NE(f.line, 3u) << render_text(f);
}

TEST(LintSeedEntropy, FlagsRandomDeviceAndWallClock) {
  const auto fs = active("a.cpp", R"cpp(#include <random>
unsigned f() {
  std::random_device rd;
  unsigned long t = static_cast<unsigned long>(time(nullptr));
  unsigned long u = static_cast<unsigned long>(time(0));
  return rd() + static_cast<unsigned>(t + u);
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-seed-entropy"), 3u);
}

TEST(LintSeedEntropy, IgnoresMemberNamedTime) {
  const auto fs = active("a.cpp", R"cpp(struct Clock { long time(void* p); };
long f(Clock& c) { return c.time(nullptr); }
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-seed-entropy"), 0u);
}

TEST(LintRawEngine, FlagsMt19937OutsideRngImpl) {
  const std::string_view src = R"cpp(#include <random>
std::mt19937 gen(42);
)cpp";
  const auto outside = active("src/ml/foo.cpp", src);
  ASSERT_EQ(count_rule(outside, "smart2-raw-mt19937"), 1u);
  EXPECT_EQ(outside[0].line, 2u);
  // The implementation files of the audited facility are exempt.
  const auto inside = active("src/common/rng.cpp", src);
  EXPECT_EQ(count_rule(inside, "smart2-raw-mt19937"), 0u);
}

TEST(LintUnorderedIteration, FlagsRangeForOverUnordered) {
  const auto fs = active("a.cpp", R"cpp(#include <unordered_map>
#include <map>
double f() {
  std::unordered_map<int, double> u;
  std::map<int, double> o;
  double s = 0;
  for (const auto& kv : u) s += kv.second;
  for (const auto& kv : o) s += kv.second;
  for (std::size_t i = 0; i < u.size(); ++i) s += 1;
  return s;
}
)cpp");
  ASSERT_EQ(count_rule(fs, "smart2-unordered-iteration"), 1u);
  EXPECT_EQ(fs[0].line, 7u);
}

// ------------------------------------------------------------ parallel

TEST(LintRawThread, FlagsThreadAndAsyncOutsidePool) {
  const std::string_view src = R"cpp(#include <thread>
#include <future>
void f() {
  std::thread t([] {});
  auto r = std::async([] { return 1; });
  t.join();
  (void)r;
}
)cpp";
  const auto outside = active("src/core/foo.cpp", src);
  EXPECT_EQ(count_rule(outside, "smart2-raw-thread"), 2u);
  const auto inside = active("src/common/parallel.cpp", src);
  EXPECT_EQ(count_rule(inside, "smart2-raw-thread"), 0u);
}

TEST(LintRawThread, AllowsHardwareConcurrencyQuery) {
  const auto fs = active("src/core/foo.cpp", R"cpp(#include <thread>
unsigned f() { return std::thread::hardware_concurrency(); }
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-raw-thread"), 0u);
}

TEST(LintParallelMutation, FlagsGrowthOfByRefCapture) {
  const auto fs = active("a.cpp", R"cpp(void f(std::vector<int>& out) {
  smart2::parallel::parallel_for(0, 8, [&](std::size_t i) {
    out.push_back(static_cast<int>(i));
  });
}
)cpp");
  ASSERT_EQ(count_rule(fs, "smart2-parallel-mutation"), 1u);
  EXPECT_EQ(fs[0].line, 3u);
}

TEST(LintParallelMutation, AllowsIndexAddressedWritesAndLocals) {
  const auto fs = active("a.cpp", R"cpp(void f(std::vector<int>& out,
       std::vector<std::vector<int>>& rows) {
  smart2::parallel::parallel_for(0, 8, [&](std::size_t i) {
    out[i] = static_cast<int>(i);
    std::vector<int> scratch;
    scratch.push_back(1);
    rows[i].push_back(2);
  });
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-parallel-mutation"), 0u);
}

TEST(LintParallelMutation, IgnoresValueCaptures) {
  const auto fs = active("a.cpp", R"cpp(void f(std::vector<int> out) {
  smart2::parallel::parallel_for(0, 8, [out](std::size_t i) mutable {
    out.push_back(static_cast<int>(i));
  });
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-parallel-mutation"), 0u);
}

TEST(LintSharedRng, FlagsSharedRngInParallelBody) {
  const auto fs = active("a.cpp", R"cpp(void f(Rng& rng, std::vector<double>& v) {
  smart2::parallel::parallel_for(0, v.size(), [&](std::size_t i) {
    v[i] = rng.uniform();
  });
}
)cpp");
  ASSERT_EQ(count_rule(fs, "smart2-shared-rng"), 1u);
  EXPECT_EQ(fs[0].line, 3u);
}

TEST(LintSharedRng, AllowsPreForkedSubstreams) {
  const auto fs = active("a.cpp", R"cpp(void f(Rng& rng, std::vector<double>& v) {
  std::vector<Rng> sub;
  for (std::size_t i = 0; i < v.size(); ++i) sub.push_back(rng.fork());
  smart2::parallel::parallel_for(0, v.size(), [&](std::size_t i) {
    v[i] = sub[i].uniform();
  });
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-shared-rng"), 0u);
}

// ------------------------------------------------------------ observability

TEST(LintSpanLiteral, FlagsComputedAndIllFormedNames) {
  const auto fs = active("src/core/x.cpp", R"cpp(void f(const char* dyn) {
  SMART2_SPAN(dyn);
  SMART2_SPAN("Stage1.Predict");
  smart2::obs::counter(dyn).add();
  smart2::obs::histogram(name_for(3)).observe_ns(1);
}
)cpp");
  ASSERT_EQ(count_rule(fs, "smart2-span-literal"), 4u);
  EXPECT_EQ(fs[0].line, 2u);  // computed macro arg
  EXPECT_EQ(fs[1].line, 3u);  // uppercase letters break the grammar
}

TEST(LintSpanLiteral, AllowsWellFormedLiterals) {
  const auto fs = active("src/core/x.cpp", R"cpp(void f() {
  SMART2_SPAN("stage1.mlr.predict");
  smart2::obs::counter("stage2.dispatch").add();
  smart2::obs::histogram("two_stage.predict_batch").observe_ns(42);
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-span-literal"), 0u);
}

TEST(LintSpanLiteral, IgnoresUnqualifiedAndMemberNames) {
  // Only the obs:: registry entry points are audited: other functions that
  // happen to be called counter()/histogram() are out of scope.
  const auto fs = active("src/core/x.cpp", R"cpp(void f(Widget& w, int k) {
  w.counter(k);
  histogram(k);
  stats::histogram(k);
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-span-literal"), 0u);
}

TEST(LintSpanLiteral, NolintSuppressesRegistryLookup) {
  const auto all = lint_text(
      "src/core/x.cpp",
      "void f(const char* n) { smart2::obs::histogram(n).observe_ns(1); }  "
      "// NOLINT(smart2-span-literal)\n");
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].suppressed);
}

// ------------------------------------------------------------ hygiene

TEST(LintHeaderGuard, FlagsUnguardedHeaderOnly) {
  const std::string_view unguarded = R"cpp(int answer();
)cpp";
  const auto hpp = active("src/x.hpp", unguarded);
  ASSERT_EQ(count_rule(hpp, "smart2-header-guard"), 1u);
  EXPECT_EQ(hpp[0].line, 1u);
  EXPECT_EQ(hpp[0].col, 1u);
  EXPECT_EQ(count_rule(active("src/x.cpp", unguarded),
                       "smart2-header-guard"),
            0u);
  EXPECT_EQ(count_rule(active("src/x.hpp", "#pragma once\nint answer();\n"),
                       "smart2-header-guard"),
            0u);
  EXPECT_EQ(count_rule(active("src/x.hpp",
                              "#ifndef X_HPP\n#define X_HPP\n#endif\n"),
                       "smart2-header-guard"),
            0u);
}

TEST(LintUsingNamespace, FlagsHeadersOnly) {
  const std::string_view src = "#pragma once\nusing namespace std;\n";
  const auto hpp = active("src/x.hpp", src);
  ASSERT_EQ(count_rule(hpp, "smart2-using-namespace-header"), 1u);
  EXPECT_EQ(hpp[0].line, 2u);
  EXPECT_EQ(count_rule(active("src/x.cpp", src),
                       "smart2-using-namespace-header"),
            0u);
}

// ------------------------------------------------------------ hot paths

TEST(LintHotPathAlloc, FlagsNewAndMakeUniqueInMarkedFunction) {
  const auto fs = active("a.cpp", R"cpp(// SMART2_HOT
void eval(double* out) {
  auto* p = new double[4];
  auto q = std::make_unique<int>(3);
  out[0] = p[0];
}
)cpp");
  ASSERT_EQ(count_rule(fs, "smart2-hot-path-alloc"), 2u);
  EXPECT_EQ(fs[0].line, 3u);
  EXPECT_EQ(fs[1].line, 4u);
}

TEST(LintHotPathAlloc, FlagsPushBackWithoutReserve) {
  const auto fs = active("a.cpp", R"cpp(// SMART2_HOT
void gather(std::vector<double>& out) {
  out.push_back(1.0);
}
)cpp");
  ASSERT_EQ(count_rule(fs, "smart2-hot-path-alloc"), 1u);
  EXPECT_EQ(fs[0].line, 3u);
}

TEST(LintHotPathAlloc, ReserveSanctionsGrowth) {
  const auto fs = active("a.cpp", R"cpp(// SMART2_HOT
void gather(std::vector<double>& out, std::size_t n) {
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(0.0);
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-hot-path-alloc"), 0u);
}

TEST(LintHotPathAlloc, UnmarkedFunctionsAreExempt) {
  const auto fs = active("a.cpp", R"cpp(void setup(std::vector<int>& v) {
  v.push_back(1);
  auto p = std::make_unique<int>(2);
  (void)p;
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-hot-path-alloc"), 0u);
}

TEST(LintHotPathAlloc, MarkerOnDeclarationDoesNotLeakToNextBody) {
  const auto fs = active("a.cpp", R"cpp(// SMART2_HOT
void eval(double* out);
void setup(std::vector<int>& v) { v.push_back(1); }
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-hot-path-alloc"), 0u);
}

TEST(LintHotPathAlloc, IndexedReceiversAreSanctioned) {
  const auto fs = active("a.cpp", R"cpp(// SMART2_HOT
void scatter(std::vector<std::vector<int>>& out, std::size_t i) {
  out[i].push_back(1);
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-hot-path-alloc"), 0u);
}

// ------------------------------------------------------------ suppression

TEST(LintNolint, SameLineSuppressesNamedRule) {
  const auto all = lint_text("a.cpp",
                             "int f() { return std::rand(); }  // "
                             "NOLINT(smart2-ban-rand)\n");
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].suppressed);
}

TEST(LintNolint, BareNolintSuppressesEverything) {
  const auto fs = active(
      "a.cpp", "int f() { srand(7); return std::rand(); }  // NOLINT\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LintNolint, WrongRuleDoesNotSuppress) {
  const auto fs = active("a.cpp",
                         "int f() { return std::rand(); }  // "
                         "NOLINT(smart2-raw-thread)\n");
  EXPECT_EQ(count_rule(fs, "smart2-ban-rand"), 1u);
}

TEST(LintNolint, NextLineSuppressesTheLineBelow) {
  const auto fs = active("a.cpp",
                         "// NOLINTNEXTLINE(smart2-ban-rand)\n"
                         "int f() { return std::rand(); }\n");
  EXPECT_TRUE(fs.empty());
}

// ------------------------------------------------------------ lexer

TEST(LintLexer, LiteralsAndCommentsAreNotCode) {
  const auto fs = active("a.cpp", R"cpp(// std::rand() in a comment
/* std::mt19937 in a block comment */
const char* s = "std::rand() in a string";
const char* r = "raw: std::random_device inside quotes";
char c = '"';
const char* after = "fine";
)cpp");
  EXPECT_TRUE(fs.empty()) << render_text(fs[0]);
}

TEST(LintLexer, RawStringsSwallowBadCode) {
  // The fixture embeds an entire bad snippet in a raw string, exactly like
  // this test file does; none of it may surface as findings.
  const auto fs = active("a.cpp",
                         "const char* f = R\"(int g(){return std::rand();} "
                         "std::mt19937 m(1);)\";\n");
  EXPECT_TRUE(fs.empty()) << render_text(fs[0]);
}

// ------------------------------------------------------------ reporting

TEST(LintReport, JsonCarriesFindingsAndCounts) {
  LintSummary summary;
  summary.files_scanned = 3;
  summary.findings = lint_text("a.cpp", "int f() { return std::rand(); }\n");
  ASSERT_EQ(summary.findings.size(), 1u);
  const std::string json = to_json(summary);
  EXPECT_NE(json.find("\"files_scanned\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"unsuppressed_findings\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"smart2-ban-rand\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": false"), std::string::npos);
}

TEST(LintReport, CatalogCoversEveryEmittedRule) {
  // Every rule id the engine can emit must be documented in the catalog
  // (seeded with one violation per category).
  const char* bad = R"cpp(#include <random>
std::mt19937 g(std::random_device{}());
int f() { return std::rand(); }
)cpp";
  for (const Finding& f : lint_text("src/ml/x.cpp", bad))
    EXPECT_TRUE(is_known_rule(f.rule)) << f.rule;
  EXPECT_EQ(rule_catalog().size(), 16u);
}

// ------------------------------------------------------ float determinism

TEST(LintFloatOrder, FlagsAccumulateOutsideSanctionedReducers) {
  const std::string_view src = R"cpp(#include <numeric>
double f(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}
)cpp";
  const auto in_ml = active("src/ml/x.cpp", src);
  ASSERT_EQ(count_rule(in_ml, "smart2-float-order"), 1u);
  EXPECT_EQ(in_ml[0].line, 3u);
  // The sanctioned reducer implementations own their association order.
  EXPECT_EQ(count_rule(active("src/common/stats.cpp", src),
                       "smart2-float-order"),
            0u);
  EXPECT_EQ(count_rule(active("src/common/simd.cpp", src),
                       "smart2-float-order"),
            0u);
  // Outside src/ there is no determinism obligation.
  EXPECT_EQ(count_rule(active("tools/x.cpp", src), "smart2-float-order"), 0u);
}

TEST(LintFloatOrder, FlagsReduceAndLongDouble) {
  const auto fs = active("src/ml/x.cpp", R"cpp(#include <numeric>
double f(const std::vector<double>& v) {
  long double acc = std::reduce(v.begin(), v.end());
  return static_cast<double>(acc);
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-float-order"), 2u);
}

TEST(LintFma, FlagsStdFmaInSrcOnly) {
  const std::string_view src = R"cpp(#include <cmath>
double f(double a, double b, double c) { return std::fma(a, b, c); }
)cpp";
  ASSERT_EQ(count_rule(active("src/ml/x.cpp", src), "smart2-fma"), 1u);
  EXPECT_EQ(count_rule(active("bench/x.cpp", src), "smart2-fma"), 0u);
}

TEST(LintFma, IgnoresMembersNamedFma) {
  const auto fs = active("src/ml/x.cpp",
                         "double f(Kernel& k) { return k.fma(1, 2, 3); }\n");
  EXPECT_EQ(count_rule(fs, "smart2-fma"), 0u);
}

// ------------------------------------------------------------ call graph

TEST(CallGraph, HeaderDeclAndSourceDefShareOneNode) {
  ProjectIndex index;
  index.add("src/a.hpp", R"cpp(#pragma once
namespace n {
void f();
}
)cpp");
  index.add("src/a.cpp", R"cpp(#include "a.hpp"
namespace n {
void g() {}
void f() { g(); }
}
)cpp");
  const CallGraph g = build_call_graph(index);
  const std::size_t f = g.find("n::f");
  const std::size_t gg = g.find("n::g");
  ASSERT_LT(f, g.nodes.size());
  ASSERT_LT(gg, g.nodes.size());
  EXPECT_EQ(g.nodes[f].decls.size(), 1u);
  EXPECT_EQ(g.nodes[f].defs.size(), 1u);
  ASSERT_EQ(g.nodes[f].callees.size(), 1u);
  EXPECT_EQ(g.nodes[f].callees[0], gg);
}

TEST(CallGraph, OverloadsShareOneNode) {
  ProjectIndex index;
  index.add("src/a.cpp", R"cpp(namespace n {
void h() {}
void f(int) { h(); }
void f(double) {}
}
)cpp");
  const CallGraph g = build_call_graph(index);
  const std::size_t f = g.find("n::f");
  ASSERT_LT(f, g.nodes.size());
  EXPECT_EQ(g.nodes[f].defs.size(), 2u);
}

TEST(CallGraph, MethodsResolveThroughOutOfLineDefinitions) {
  ProjectIndex index;
  index.add("src/a.hpp", R"cpp(#pragma once
namespace n {
class C {
 public:
  void m();
  int inline_m() { return 1; }
};
}
)cpp");
  index.add("src/a.cpp", R"cpp(namespace n {
void C::m() { helper(); }
void helper() {}
}
)cpp");
  const CallGraph g = build_call_graph(index);
  const std::size_t m = g.find("n::C::m");
  ASSERT_LT(m, g.nodes.size());
  EXPECT_EQ(g.nodes[m].decls.size(), 1u);
  EXPECT_EQ(g.nodes[m].defs.size(), 1u);
  EXPECT_LT(g.find("n::C::inline_m"), g.nodes.size());
  ASSERT_EQ(g.nodes[m].callees.size(), 1u);
  EXPECT_EQ(g.nodes[m].callees[0], g.find("n::helper"));
}

TEST(CallGraph, QualifierNarrowsOverloadSets) {
  ProjectIndex index;
  index.add("src/a.cpp", R"cpp(namespace a { void run() {} }
namespace b { void run() {} }
void f() { a::run(); }
)cpp");
  const CallGraph g = build_call_graph(index);
  const std::size_t f = g.find("f");
  ASSERT_LT(f, g.nodes.size());
  ASSERT_EQ(g.nodes[f].callees.size(), 1u);
  EXPECT_EQ(g.nodes[f].callees[0], g.find("a::run"));
}

TEST(CallGraph, NamedLambdaLocalsDoNotResolveToProjectFunctions) {
  ProjectIndex index;
  index.add("src/a.cpp", R"cpp(namespace n {
void run() {}
void f() {
  auto run = [&](int e) { (void)e; };
  run(3);
}
}
)cpp");
  const CallGraph g = build_call_graph(index);
  const std::size_t f = g.find("n::f");
  ASSERT_LT(f, g.nodes.size());
  EXPECT_TRUE(g.nodes[f].callees.empty());
}

// ------------------------------------------------- interprocedural rules

TEST(LintHotClosure, UnmarkedCalleeOfHotRootIsFlaggedWithFixit) {
  // `detect` is a hot root by name; nothing carries a marker. The root and
  // helper are flagged unmarked; deep is a trivial leaf (growth call only)
  // so it owes no marker, but its allocation is still caught below.
  const auto fs = active_files({{"src/core/x.cpp", R"cpp(namespace n {
void deep(std::vector<int>& v) { v.push_back(1); }
void helper(std::vector<int>& v) { deep(v); }
bool detect(std::vector<int>& v) { helper(v); return true; }
}
)cpp"}});
  ASSERT_EQ(count_rule(fs, "smart2-hot-unmarked"), 2u);
  EXPECT_EQ(count_rule(fs, "smart2-hot-callee-alloc"), 1u);
  for (const Finding& f : fs) {
    if (f.rule != "smart2-hot-unmarked") continue;
    EXPECT_NE(f.fixit.find("insert `// SMART2_HOT`"), std::string::npos)
        << f.fixit;
  }
}

TEST(LintHotClosure, MarkersSilenceUnmarkedAndPerFileRuleTakesOver) {
  const auto fs = active_files({{"src/core/x.cpp", R"cpp(namespace n {
// SMART2_HOT
void deep(std::vector<int>& v) { v.push_back(1); }
// SMART2_HOT
void helper(std::vector<int>& v) { deep(v); }
// SMART2_HOT
bool detect(std::vector<int>& v) { helper(v); return true; }
}
)cpp"}});
  EXPECT_EQ(count_rule(fs, "smart2-hot-unmarked"), 0u);
  EXPECT_EQ(count_rule(fs, "smart2-hot-callee-alloc"), 0u);
  // The marked callee's allocation is now the per-file rule's business.
  ASSERT_EQ(count_rule(fs, "smart2-hot-path-alloc"), 1u);
}

TEST(LintHotClosure, AllocationInIndirectCalleeIsFlagged) {
  // Two hops from the hot root, across files, without any marker.
  const auto fs = active_files(
      {{"src/core/x.cpp", R"cpp(#include "y.hpp"
namespace n {
bool detect(int k) { return helper(k) != nullptr; }
}
)cpp"},
       {"src/core/y.cpp", R"cpp(namespace n {
int* deep(int k) { return new int(k); }
int* helper(int k) { return deep(k); }
}
)cpp"}});
  const auto alloc = count_rule(fs, "smart2-hot-callee-alloc");
  ASSERT_EQ(alloc, 1u);
  for (const Finding& f : fs)
    if (f.rule == "smart2-hot-callee-alloc") {
      EXPECT_EQ(f.file, "src/core/y.cpp");
      EXPECT_NE(f.message.find("new expression"), std::string::npos);
      EXPECT_NE(f.message.find("n::detect"), std::string::npos) << f.message;
    }
}

TEST(LintHotClosure, ColdMarkerIsABarrier) {
  const auto fs = active_files({{"src/core/x.cpp", R"cpp(namespace n {
// SMART2_COLD: deliberate fallback
int* slow(int k) { return new int(k); }
// SMART2_HOT
bool detect(int k) { return slow(k) != nullptr; }
}
)cpp"}});
  EXPECT_EQ(count_rule(fs, "smart2-hot-unmarked"), 0u);
  EXPECT_EQ(count_rule(fs, "smart2-hot-callee-alloc"), 0u);
}

TEST(LintHotClosure, NolintSuppressesProjectFindings) {
  const auto all = lint_files({{"src/core/x.cpp", R"cpp(namespace n {
void inner(std::vector<int>& v) { v.resize(v.size() + 1); }
// NOLINTNEXTLINE(smart2-hot-unmarked)
void helper(std::vector<int>& v) { inner(v); }
// SMART2_HOT
bool detect(std::vector<int>& v) { helper(v); return true; }
}
)cpp"}});
  std::size_t suppressed = 0;
  for (const Finding& f : all)
    if (f.rule == "smart2-hot-unmarked" && f.suppressed) ++suppressed;
  EXPECT_EQ(suppressed, 1u);
}

TEST(LintHotClosure, TrivialLeavesNeedNoMarker) {
  const auto fs = active_files({{"src/core/x.cpp", R"cpp(namespace n {
struct S {
  int v = 0;
  int value() const { return v; }
};
// SMART2_HOT
bool detect(const S& s) { return s.value() > 0; }
}
)cpp"}});
  EXPECT_EQ(count_rule(fs, "smart2-hot-unmarked"), 0u);
}

TEST(LintHotClosure, ProseMentionOfMarkerDoesNotMark) {
  // The comment above helper mentions the // SMART2_HOT marker
  // mid-sentence; that is prose, not a marker, so helper stays unmarked
  // and is flagged.
  const auto fs = active_files({{"src/core/x.cpp", R"cpp(namespace n {
// SMART2_HOT
void inner(std::vector<int>& v) { v.resize(v.size() + 1); }
// Documented alongside a // SMART2_HOT sibling, which must not count.
void helper(std::vector<int>& v) { inner(v); }
// SMART2_HOT
bool detect(std::vector<int>& v) { helper(v); return true; }
}
)cpp"}});
  ASSERT_EQ(count_rule(fs, "smart2-hot-unmarked"), 1u);
  for (const Finding& f : fs) {
    if (f.rule != "smart2-hot-unmarked") continue;
    EXPECT_NE(f.message.find("n::helper"), std::string::npos) << f.message;
  }
}

TEST(LintParallelCalleeMutation, FlagsCalleeGrowingByRefCapture) {
  const auto fs = active_files({{"src/core/x.cpp", R"cpp(namespace n {
void append_to(std::vector<int>& sink, int v) { sink.push_back(v); }
void f(std::vector<int>& out) {
  smart2::parallel::parallel_for(0, 8, [&](std::size_t i) {
    append_to(out, static_cast<int>(i));
  });
}
}
)cpp"}});
  ASSERT_EQ(count_rule(fs, "smart2-parallel-callee-mutation"), 1u);
  for (const Finding& f : fs)
    if (f.rule == "smart2-parallel-callee-mutation") {
      EXPECT_NE(f.message.find("'sink'"), std::string::npos) << f.message;
      EXPECT_NE(f.message.find("'out'"), std::string::npos) << f.message;
    }
}

TEST(LintParallelCalleeMutation, FlagsCalleeMutatingGlobal) {
  const auto fs = active_files({{"src/core/x.cpp", R"cpp(namespace n {
int g_total = 0;
void bump() { g_total += 1; }
void f() {
  smart2::parallel::parallel_for(0, 8, [&](std::size_t i) {
    (void)i;
    bump();
  });
}
}
)cpp"}});
  ASSERT_EQ(count_rule(fs, "smart2-parallel-callee-mutation"), 1u);
}

TEST(LintParallelCalleeMutation, ConstRefAndLocalArgsAreClean) {
  const auto fs = active_files({{"src/core/x.cpp", R"cpp(namespace n {
int sum_of(const std::vector<int>& v) { return static_cast<int>(v.size()); }
void append_to(std::vector<int>& sink, int v) { sink.push_back(v); }
void f(const std::vector<int>& in, std::vector<int>& out) {
  smart2::parallel::parallel_for(0, 8, [&](std::size_t i) {
    std::vector<int> local;
    append_to(local, sum_of(in) + static_cast<int>(i));
    out[i] = local.empty() ? 0 : local[0];
  });
}
}
)cpp"}});
  EXPECT_EQ(count_rule(fs, "smart2-parallel-callee-mutation"), 0u);
}

// ------------------------------------------------------------ baseline

TEST(Baseline, ParsesSerializesAndRoundTrips) {
  Baseline b;
  b.entries.push_back(
      {"src/a.cpp", 12, "smart2-hot-callee-alloc", "deliberate"});
  b.entries.push_back({"src/b.cpp", 3, "smart2-float-order", "reviewed"});
  const std::string text = serialize_baseline(b);
  Baseline parsed;
  std::string error;
  ASSERT_TRUE(parse_baseline(text, &parsed, &error)) << error;
  ASSERT_EQ(parsed.entries.size(), 2u);
  EXPECT_EQ(parsed.entries[0].file, "src/a.cpp");
  EXPECT_EQ(parsed.entries[0].line, 12u);
  EXPECT_EQ(parsed.entries[0].rule, "smart2-hot-callee-alloc");
  EXPECT_EQ(parsed.entries[0].note, "deliberate");
}

TEST(Baseline, RejectsUnknownRulesAndMalformedJson) {
  Baseline parsed;
  std::string error;
  EXPECT_FALSE(parse_baseline(
      R"({"tool": "smart2_lint_baseline", "entries": [
           {"file": "a.cpp", "line": 1, "rule": "not-a-rule"}]})",
      &parsed, &error));
  EXPECT_NE(error.find("not-a-rule"), std::string::npos) << error;
  EXPECT_FALSE(parse_baseline("{", &parsed, &error));
}

TEST(Baseline, MatchesFindingsAndReportsStaleEntries) {
  std::vector<Finding> findings = lint_text(
      "repo/src/ml/x.cpp", "int f() { return std::rand(); }\n");
  ASSERT_EQ(findings.size(), 1u);
  Baseline b;
  // Suffix match at a '/' boundary: baseline written from the repo root
  // matches a scan rooted elsewhere.
  b.entries.push_back({"src/ml/x.cpp", 1, "smart2-ban-rand", "legacy"});
  b.entries.push_back({"src/ml/gone.cpp", 9, "smart2-ban-rand", "paid off"});
  const BaselineMatch match = apply_baseline(b, &findings);
  EXPECT_EQ(match.matched_findings, 1u);
  EXPECT_TRUE(findings[0].baselined);
  ASSERT_EQ(match.stale.size(), 1u);
  EXPECT_EQ(match.stale[0].file, "src/ml/gone.cpp");
}

TEST(Baseline, BaselinedFindingsLeaveTheActionableCount) {
  LintSummary summary;
  summary.findings = lint_text("src/ml/x.cpp",
                               "int f() { return std::rand(); }\n");
  Baseline b = baseline_from_findings(summary.findings);
  ASSERT_EQ(b.entries.size(), 1u);
  EXPECT_EQ(b.entries[0].note, "TODO: justify");
  apply_baseline(b, &summary.findings);
  EXPECT_EQ(summary.actionable_count(), 0u);
  EXPECT_EQ(summary.baselined_count(), 1u);
  const std::string json = to_json(summary);
  EXPECT_NE(json.find("\"baselined_findings\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"actionable_findings\": 0"), std::string::npos);
}

TEST(Baseline, RepoBaselineHasNoStaleEntriesAgainstItsRules) {
  // Every entry in the committed baseline must name a known rule; staleness
  // against the live tree is asserted by the lint_selfcheck ctest, which
  // runs the real binary with --fail-stale-baseline.
  const std::filesystem::path path =
      std::filesystem::path(SMART2_SOURCE_DIR) / "tools" / "smart2_lint" /
      "baseline.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  Baseline parsed;
  std::string error;
  EXPECT_TRUE(parse_baseline(ss.str(), &parsed, &error)) << error;
}

// ------------------------------------------- closure / alloc-test cross-check

TEST(LintSourceTree, HotClosureCoversAllocTestedEntryPoints) {
  // tests/alloc_test.cpp asserts these functions are allocation-free at
  // run time; the static closure must therefore contain each of them, so
  // the lint guards exactly what the run-time counter guards.
  ProjectIndex index;
  const std::filesystem::path root =
      std::filesystem::path(SMART2_SOURCE_DIR) / "src";
  ASSERT_TRUE(std::filesystem::exists(root));
  std::vector<std::filesystem::path> paths;
  for (const auto& e : std::filesystem::recursive_directory_iterator(root)) {
    if (!e.is_regular_file()) continue;
    const std::string ext = e.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp") paths.push_back(e.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    std::ifstream in(p);
    std::stringstream ss;
    ss << in.rdbuf();
    index.add(p.string(), ss.str());
  }

  const CallGraph graph = build_call_graph(index);
  const HotClosure closure = hot_closure(graph, index);
  for (const char* fn :
       {"smart2::TwoStageHmd::detect", "smart2::TwoStageHmd::predict_batch_into",
        "smart2::OnlineDetector::observe"}) {
    const std::size_t id = graph.find(fn);
    ASSERT_LT(id, graph.nodes.size()) << fn;
    EXPECT_TRUE(closure.in_closure[id]) << fn << " not in the hot closure";
  }

  // The dot dump renders and contains the seeds.
  const std::string dot = to_dot(graph, closure);
  EXPECT_NE(dot.find("digraph smart2_callgraph"), std::string::npos);
  EXPECT_NE(dot.find("smart2::TwoStageHmd::detect"), std::string::npos);
}

}  // namespace
}  // namespace smart2::lint

// smart2_lint rule-engine tests: inline good/bad fixture snippets run
// through lint_text(), asserting rule IDs, locations, and NOLINT
// suppression. Fixtures live in raw strings, which doubles as a lexer
// regression test: when the linter self-scans this file, none of the
// deliberately bad code below may produce a finding, because all of it is
// string-literal content.

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "smart2_lint/diagnostics.hpp"
#include "smart2_lint/rules.hpp"

namespace smart2::lint {
namespace {

std::vector<Finding> active(std::string_view path, std::string_view src) {
  std::vector<Finding> out;
  for (Finding& f : lint_text(path, src))
    if (!f.suppressed) out.push_back(std::move(f));
  return out;
}

std::size_t count_rule(const std::vector<Finding>& fs, std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(fs.begin(), fs.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

// ------------------------------------------------------------ determinism

TEST(LintBanRand, FlagsStdRandAndSrand) {
  const auto fs = active("a.cpp", R"cpp(int f() {
  srand(42);
  return std::rand();
}
)cpp");
  ASSERT_EQ(count_rule(fs, "smart2-ban-rand"), 2u);
  EXPECT_EQ(fs[0].line, 2u);
  EXPECT_EQ(fs[0].col, 3u);
  EXPECT_EQ(fs[1].line, 3u);
}

TEST(LintBanRand, IgnoresVariablesAndMembersNamedRand) {
  const auto fs = active("a.cpp", R"cpp(struct G { int rand() { return 4; } };
int f(G& g) {
  int rand = g.rand();
  return rand;
}
)cpp");
  // g.rand() is a member call; `int rand` is a variable; the struct's own
  // declaration is neither called nor std-qualified at its site... except
  // `int rand()` inside the struct *is* an identifier followed by '(' --
  // a known, documented over-approximation handled via NOLINT in real
  // code. Assert only that the member call and variable are clean.
  for (const Finding& f : fs) EXPECT_NE(f.line, 3u) << render_text(f);
}

TEST(LintSeedEntropy, FlagsRandomDeviceAndWallClock) {
  const auto fs = active("a.cpp", R"cpp(#include <random>
unsigned f() {
  std::random_device rd;
  unsigned long t = static_cast<unsigned long>(time(nullptr));
  unsigned long u = static_cast<unsigned long>(time(0));
  return rd() + static_cast<unsigned>(t + u);
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-seed-entropy"), 3u);
}

TEST(LintSeedEntropy, IgnoresMemberNamedTime) {
  const auto fs = active("a.cpp", R"cpp(struct Clock { long time(void* p); };
long f(Clock& c) { return c.time(nullptr); }
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-seed-entropy"), 0u);
}

TEST(LintRawEngine, FlagsMt19937OutsideRngImpl) {
  const std::string_view src = R"cpp(#include <random>
std::mt19937 gen(42);
)cpp";
  const auto outside = active("src/ml/foo.cpp", src);
  ASSERT_EQ(count_rule(outside, "smart2-raw-mt19937"), 1u);
  EXPECT_EQ(outside[0].line, 2u);
  // The implementation files of the audited facility are exempt.
  const auto inside = active("src/common/rng.cpp", src);
  EXPECT_EQ(count_rule(inside, "smart2-raw-mt19937"), 0u);
}

TEST(LintUnorderedIteration, FlagsRangeForOverUnordered) {
  const auto fs = active("a.cpp", R"cpp(#include <unordered_map>
#include <map>
double f() {
  std::unordered_map<int, double> u;
  std::map<int, double> o;
  double s = 0;
  for (const auto& kv : u) s += kv.second;
  for (const auto& kv : o) s += kv.second;
  for (std::size_t i = 0; i < u.size(); ++i) s += 1;
  return s;
}
)cpp");
  ASSERT_EQ(count_rule(fs, "smart2-unordered-iteration"), 1u);
  EXPECT_EQ(fs[0].line, 7u);
}

// ------------------------------------------------------------ parallel

TEST(LintRawThread, FlagsThreadAndAsyncOutsidePool) {
  const std::string_view src = R"cpp(#include <thread>
#include <future>
void f() {
  std::thread t([] {});
  auto r = std::async([] { return 1; });
  t.join();
  (void)r;
}
)cpp";
  const auto outside = active("src/core/foo.cpp", src);
  EXPECT_EQ(count_rule(outside, "smart2-raw-thread"), 2u);
  const auto inside = active("src/common/parallel.cpp", src);
  EXPECT_EQ(count_rule(inside, "smart2-raw-thread"), 0u);
}

TEST(LintRawThread, AllowsHardwareConcurrencyQuery) {
  const auto fs = active("src/core/foo.cpp", R"cpp(#include <thread>
unsigned f() { return std::thread::hardware_concurrency(); }
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-raw-thread"), 0u);
}

TEST(LintParallelMutation, FlagsGrowthOfByRefCapture) {
  const auto fs = active("a.cpp", R"cpp(void f(std::vector<int>& out) {
  smart2::parallel::parallel_for(0, 8, [&](std::size_t i) {
    out.push_back(static_cast<int>(i));
  });
}
)cpp");
  ASSERT_EQ(count_rule(fs, "smart2-parallel-mutation"), 1u);
  EXPECT_EQ(fs[0].line, 3u);
}

TEST(LintParallelMutation, AllowsIndexAddressedWritesAndLocals) {
  const auto fs = active("a.cpp", R"cpp(void f(std::vector<int>& out,
       std::vector<std::vector<int>>& rows) {
  smart2::parallel::parallel_for(0, 8, [&](std::size_t i) {
    out[i] = static_cast<int>(i);
    std::vector<int> scratch;
    scratch.push_back(1);
    rows[i].push_back(2);
  });
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-parallel-mutation"), 0u);
}

TEST(LintParallelMutation, IgnoresValueCaptures) {
  const auto fs = active("a.cpp", R"cpp(void f(std::vector<int> out) {
  smart2::parallel::parallel_for(0, 8, [out](std::size_t i) mutable {
    out.push_back(static_cast<int>(i));
  });
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-parallel-mutation"), 0u);
}

TEST(LintSharedRng, FlagsSharedRngInParallelBody) {
  const auto fs = active("a.cpp", R"cpp(void f(Rng& rng, std::vector<double>& v) {
  smart2::parallel::parallel_for(0, v.size(), [&](std::size_t i) {
    v[i] = rng.uniform();
  });
}
)cpp");
  ASSERT_EQ(count_rule(fs, "smart2-shared-rng"), 1u);
  EXPECT_EQ(fs[0].line, 3u);
}

TEST(LintSharedRng, AllowsPreForkedSubstreams) {
  const auto fs = active("a.cpp", R"cpp(void f(Rng& rng, std::vector<double>& v) {
  std::vector<Rng> sub;
  for (std::size_t i = 0; i < v.size(); ++i) sub.push_back(rng.fork());
  smart2::parallel::parallel_for(0, v.size(), [&](std::size_t i) {
    v[i] = sub[i].uniform();
  });
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-shared-rng"), 0u);
}

// ------------------------------------------------------------ observability

TEST(LintSpanLiteral, FlagsComputedAndIllFormedNames) {
  const auto fs = active("src/core/x.cpp", R"cpp(void f(const char* dyn) {
  SMART2_SPAN(dyn);
  SMART2_SPAN("Stage1.Predict");
  smart2::obs::counter(dyn).add();
  smart2::obs::histogram(name_for(3)).observe_ns(1);
}
)cpp");
  ASSERT_EQ(count_rule(fs, "smart2-span-literal"), 4u);
  EXPECT_EQ(fs[0].line, 2u);  // computed macro arg
  EXPECT_EQ(fs[1].line, 3u);  // uppercase letters break the grammar
}

TEST(LintSpanLiteral, AllowsWellFormedLiterals) {
  const auto fs = active("src/core/x.cpp", R"cpp(void f() {
  SMART2_SPAN("stage1.mlr.predict");
  smart2::obs::counter("stage2.dispatch").add();
  smart2::obs::histogram("two_stage.predict_batch").observe_ns(42);
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-span-literal"), 0u);
}

TEST(LintSpanLiteral, IgnoresUnqualifiedAndMemberNames) {
  // Only the obs:: registry entry points are audited: other functions that
  // happen to be called counter()/histogram() are out of scope.
  const auto fs = active("src/core/x.cpp", R"cpp(void f(Widget& w, int k) {
  w.counter(k);
  histogram(k);
  stats::histogram(k);
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-span-literal"), 0u);
}

TEST(LintSpanLiteral, NolintSuppressesRegistryLookup) {
  const auto all = lint_text(
      "src/core/x.cpp",
      "void f(const char* n) { smart2::obs::histogram(n).observe_ns(1); }  "
      "// NOLINT(smart2-span-literal)\n");
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].suppressed);
}

// ------------------------------------------------------------ hygiene

TEST(LintHeaderGuard, FlagsUnguardedHeaderOnly) {
  const std::string_view unguarded = R"cpp(int answer();
)cpp";
  const auto hpp = active("src/x.hpp", unguarded);
  ASSERT_EQ(count_rule(hpp, "smart2-header-guard"), 1u);
  EXPECT_EQ(hpp[0].line, 1u);
  EXPECT_EQ(hpp[0].col, 1u);
  EXPECT_EQ(count_rule(active("src/x.cpp", unguarded),
                       "smart2-header-guard"),
            0u);
  EXPECT_EQ(count_rule(active("src/x.hpp", "#pragma once\nint answer();\n"),
                       "smart2-header-guard"),
            0u);
  EXPECT_EQ(count_rule(active("src/x.hpp",
                              "#ifndef X_HPP\n#define X_HPP\n#endif\n"),
                       "smart2-header-guard"),
            0u);
}

TEST(LintUsingNamespace, FlagsHeadersOnly) {
  const std::string_view src = "#pragma once\nusing namespace std;\n";
  const auto hpp = active("src/x.hpp", src);
  ASSERT_EQ(count_rule(hpp, "smart2-using-namespace-header"), 1u);
  EXPECT_EQ(hpp[0].line, 2u);
  EXPECT_EQ(count_rule(active("src/x.cpp", src),
                       "smart2-using-namespace-header"),
            0u);
}

// ------------------------------------------------------------ hot paths

TEST(LintHotPathAlloc, FlagsNewAndMakeUniqueInMarkedFunction) {
  const auto fs = active("a.cpp", R"cpp(// SMART2_HOT
void eval(double* out) {
  auto* p = new double[4];
  auto q = std::make_unique<int>(3);
  out[0] = p[0];
}
)cpp");
  ASSERT_EQ(count_rule(fs, "smart2-hot-path-alloc"), 2u);
  EXPECT_EQ(fs[0].line, 3u);
  EXPECT_EQ(fs[1].line, 4u);
}

TEST(LintHotPathAlloc, FlagsPushBackWithoutReserve) {
  const auto fs = active("a.cpp", R"cpp(// SMART2_HOT
void gather(std::vector<double>& out) {
  out.push_back(1.0);
}
)cpp");
  ASSERT_EQ(count_rule(fs, "smart2-hot-path-alloc"), 1u);
  EXPECT_EQ(fs[0].line, 3u);
}

TEST(LintHotPathAlloc, ReserveSanctionsGrowth) {
  const auto fs = active("a.cpp", R"cpp(// SMART2_HOT
void gather(std::vector<double>& out, std::size_t n) {
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(0.0);
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-hot-path-alloc"), 0u);
}

TEST(LintHotPathAlloc, UnmarkedFunctionsAreExempt) {
  const auto fs = active("a.cpp", R"cpp(void setup(std::vector<int>& v) {
  v.push_back(1);
  auto p = std::make_unique<int>(2);
  (void)p;
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-hot-path-alloc"), 0u);
}

TEST(LintHotPathAlloc, MarkerOnDeclarationDoesNotLeakToNextBody) {
  const auto fs = active("a.cpp", R"cpp(// SMART2_HOT
void eval(double* out);
void setup(std::vector<int>& v) { v.push_back(1); }
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-hot-path-alloc"), 0u);
}

TEST(LintHotPathAlloc, IndexedReceiversAreSanctioned) {
  const auto fs = active("a.cpp", R"cpp(// SMART2_HOT
void scatter(std::vector<std::vector<int>>& out, std::size_t i) {
  out[i].push_back(1);
}
)cpp");
  EXPECT_EQ(count_rule(fs, "smart2-hot-path-alloc"), 0u);
}

// ------------------------------------------------------------ suppression

TEST(LintNolint, SameLineSuppressesNamedRule) {
  const auto all = lint_text("a.cpp",
                             "int f() { return std::rand(); }  // "
                             "NOLINT(smart2-ban-rand)\n");
  ASSERT_EQ(all.size(), 1u);
  EXPECT_TRUE(all[0].suppressed);
}

TEST(LintNolint, BareNolintSuppressesEverything) {
  const auto fs = active(
      "a.cpp", "int f() { srand(7); return std::rand(); }  // NOLINT\n");
  EXPECT_TRUE(fs.empty());
}

TEST(LintNolint, WrongRuleDoesNotSuppress) {
  const auto fs = active("a.cpp",
                         "int f() { return std::rand(); }  // "
                         "NOLINT(smart2-raw-thread)\n");
  EXPECT_EQ(count_rule(fs, "smart2-ban-rand"), 1u);
}

TEST(LintNolint, NextLineSuppressesTheLineBelow) {
  const auto fs = active("a.cpp",
                         "// NOLINTNEXTLINE(smart2-ban-rand)\n"
                         "int f() { return std::rand(); }\n");
  EXPECT_TRUE(fs.empty());
}

// ------------------------------------------------------------ lexer

TEST(LintLexer, LiteralsAndCommentsAreNotCode) {
  const auto fs = active("a.cpp", R"cpp(// std::rand() in a comment
/* std::mt19937 in a block comment */
const char* s = "std::rand() in a string";
const char* r = "raw: std::random_device inside quotes";
char c = '"';
const char* after = "fine";
)cpp");
  EXPECT_TRUE(fs.empty()) << render_text(fs[0]);
}

TEST(LintLexer, RawStringsSwallowBadCode) {
  // The fixture embeds an entire bad snippet in a raw string, exactly like
  // this test file does; none of it may surface as findings.
  const auto fs = active("a.cpp",
                         "const char* f = R\"(int g(){return std::rand();} "
                         "std::mt19937 m(1);)\";\n");
  EXPECT_TRUE(fs.empty()) << render_text(fs[0]);
}

// ------------------------------------------------------------ reporting

TEST(LintReport, JsonCarriesFindingsAndCounts) {
  LintSummary summary;
  summary.files_scanned = 3;
  summary.findings = lint_text("a.cpp", "int f() { return std::rand(); }\n");
  ASSERT_EQ(summary.findings.size(), 1u);
  const std::string json = to_json(summary);
  EXPECT_NE(json.find("\"files_scanned\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"unsuppressed_findings\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"smart2-ban-rand\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": false"), std::string::npos);
}

TEST(LintReport, CatalogCoversEveryEmittedRule) {
  // Every rule id the engine can emit must be documented in the catalog
  // (seeded with one violation per category).
  const char* bad = R"cpp(#include <random>
std::mt19937 g(std::random_device{}());
int f() { return std::rand(); }
)cpp";
  for (const Finding& f : lint_text("src/ml/x.cpp", bad))
    EXPECT_TRUE(is_known_rule(f.rule)) << f.rule;
  EXPECT_EQ(rule_catalog().size(), 11u);
}

}  // namespace
}  // namespace smart2::lint

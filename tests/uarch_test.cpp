// Tests for src/uarch: caches, TLB, branch predictor, core event semantics.
#include <gtest/gtest.h>

#include "uarch/branch_predictor.hpp"
#include "uarch/cache.hpp"
#include "uarch/core.hpp"
#include "uarch/events.hpp"
#include "uarch/tlb.hpp"

namespace smart2 {
namespace {

// -------------------------------------------------------------- events ---

TEST(EventsTest, CountIs44) { EXPECT_EQ(kNumEvents, 44u); }

TEST(EventsTest, NamesAreUniqueAndRoundTrip) {
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    const Event e = event_at(i);
    const auto back = event_from_name(event_name(e));
    ASSERT_TRUE(back.has_value()) << event_name(e);
    EXPECT_EQ(*back, e);
  }
}

TEST(EventsTest, ShortNamesResolve) {
  EXPECT_EQ(event_from_name("branch-inst"), Event::kBranchInstructions);
  EXPECT_EQ(event_from_name("node-st"), Event::kNodeStores);
  EXPECT_EQ(event_from_name("cache-ref"), Event::kCacheReferences);
  EXPECT_FALSE(event_from_name("flux-capacitor").has_value());
}

TEST(EventsTest, PaperTableIIEventsExist) {
  // Every event name appearing in the paper's Table II must resolve.
  for (const char* name :
       {"branch-inst", "cache-ref", "branch-miss", "node-st", "branch-lds",
        "L1-icache-ld-miss", "LLC-ld-miss", "iTLB-ld-miss", "cache-miss",
        "LLC-lds", "L1-dcache-lds", "L1-dcache-st"}) {
    EXPECT_TRUE(event_from_name(name).has_value()) << name;
  }
}

// --------------------------------------------------------------- cache ---

TEST(CacheTest, MissThenHitSameLine) {
  Cache c({1024, 2, 64});
  EXPECT_FALSE(c.access(0x1000).hit);
  EXPECT_TRUE(c.access(0x1000).hit);
  EXPECT_TRUE(c.access(0x1038).hit);  // same 64B line
  EXPECT_EQ(c.misses(), 1u);
  EXPECT_EQ(c.accesses(), 3u);
}

TEST(CacheTest, LruEvictionOrder) {
  // 2-way, line 64 -> sets = 1024/64/2 = 8. Addresses with the same set
  // index differ by 8*64 = 512.
  Cache c({1024, 2, 64});
  EXPECT_FALSE(c.access(0x0000).hit);
  EXPECT_FALSE(c.access(0x0200).hit);   // same set, second way
  EXPECT_TRUE(c.access(0x0000).hit);    // touch A -> B becomes LRU
  EXPECT_FALSE(c.access(0x0400).hit);   // evicts B
  EXPECT_TRUE(c.access(0x0000).hit);    // A survives
  EXPECT_FALSE(c.access(0x0200).hit);   // B was evicted
}

TEST(CacheTest, DirtyEvictionReportsWriteback) {
  Cache c({128, 1, 64});  // 2 sets, direct-mapped
  EXPECT_FALSE(c.access(0x0000, /*is_store=*/true).hit);
  const auto r = c.access(0x0080, /*is_store=*/false);  // same set 0
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.victim_address, 0x0000u);
  EXPECT_EQ(c.writebacks(), 1u);
}

TEST(CacheTest, CleanEvictionHasNoWriteback) {
  Cache c({128, 1, 64});
  c.access(0x0000, /*is_store=*/false);
  const auto r = c.access(0x0080, /*is_store=*/false);
  EXPECT_FALSE(r.writeback);
}

TEST(CacheTest, MarkDirtyIfPresent) {
  Cache c({128, 2, 64});
  c.access(0x0000, false);
  EXPECT_TRUE(c.mark_dirty_if_present(0x0000));
  EXPECT_FALSE(c.mark_dirty_if_present(0x4000));
  // The marked line writes back on eviction.
  c.access(0x0100, false);
  const auto r = c.access(0x0200, false);
  EXPECT_TRUE(r.writeback);
}

TEST(CacheTest, ProbeDoesNotInstall) {
  Cache c({128, 2, 64});
  EXPECT_FALSE(c.probe(0x0000));
  EXPECT_FALSE(c.access(0x0000).hit);
  EXPECT_TRUE(c.probe(0x0000));
  EXPECT_EQ(c.accesses(), 1u);  // probe did not count
}

TEST(CacheTest, ResetClearsEverything) {
  Cache c({128, 2, 64});
  c.access(0x0000, true);
  c.reset();
  EXPECT_EQ(c.accesses(), 0u);
  EXPECT_EQ(c.misses(), 0u);
  EXPECT_FALSE(c.probe(0x0000));
}

TEST(CacheTest, InvalidConfigThrows) {
  EXPECT_THROW(Cache({1024, 2, 60}), std::invalid_argument);   // non-pow2 line
  EXPECT_THROW(Cache({1024, 0, 64}), std::invalid_argument);   // zero ways
  EXPECT_THROW(Cache({1000, 2, 64}), std::invalid_argument);   // bad ratio
}

class CacheInvariantTest
    : public ::testing::TestWithParam<CacheConfig> {};

TEST_P(CacheInvariantTest, MissesNeverExceedAccesses) {
  Cache c(GetParam());
  Rng rng(99);
  for (int i = 0; i < 20000; ++i)
    c.access(rng.uniform_index(1u << 20) * 8, rng.bernoulli(0.3));
  EXPECT_LE(c.misses(), c.accesses());
  EXPECT_EQ(c.accesses(), 20000u);
  EXPECT_LE(c.writebacks(), c.misses());
}

TEST_P(CacheInvariantTest, WorkingSetSmallerThanCacheEventuallyAllHits) {
  Cache c(GetParam());
  const std::uint64_t lines = GetParam().size_bytes / GetParam().line_bytes;
  const std::uint64_t ws = lines / 2;  // half the capacity
  for (std::uint64_t pass = 0; pass < 3; ++pass)
    for (std::uint64_t i = 0; i < ws; ++i)
      c.access(i * GetParam().line_bytes);
  // After the first pass everything fits: misses == ws exactly.
  EXPECT_EQ(c.misses(), ws);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheInvariantTest,
    ::testing::Values(CacheConfig{4096, 1, 64}, CacheConfig{8192, 4, 64},
                      CacheConfig{32768, 8, 64}, CacheConfig{65536, 16, 32}));

// ----------------------------------------------------------------- tlb ---

TEST(TlbTest, MissThenHitSamePage) {
  Tlb t({16, 4, 4096});
  EXPECT_FALSE(t.access(0x1000));
  EXPECT_TRUE(t.access(0x1FFF));  // same page
  EXPECT_EQ(t.misses(), 1u);
}

TEST(TlbTest, CapacityEviction) {
  Tlb t({4, 4, 4096});  // fully associative with 4 entries
  for (std::uint64_t p = 0; p < 5; ++p) t.access(p * 4096);
  EXPECT_EQ(t.misses(), 5u);
  // Page 0 was LRU -> evicted.
  EXPECT_FALSE(t.access(0));
}

TEST(TlbTest, ResetFlushes) {
  Tlb t({8, 4, 4096});
  t.access(0x1000);
  t.reset();
  EXPECT_FALSE(t.access(0x1000));
}

TEST(TlbTest, InvalidConfigThrows) {
  EXPECT_THROW(Tlb({0, 1, 4096}), std::invalid_argument);
  EXPECT_THROW(Tlb({7, 2, 4096}), std::invalid_argument);
  EXPECT_THROW(Tlb({8, 2, 1000}), std::invalid_argument);
}

// ---------------------------------------------------- branch predictor ---

TEST(BranchPredictorTest, LearnsStronglyBiasedBranch) {
  BranchPredictor bp({12, 0, 512});
  int mispredicts = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto o = bp.access(0x4000, true, 0x5000);
    if (!o.direction_correct) ++mispredicts;
  }
  EXPECT_LE(mispredicts, 2);  // warm-up only
}

TEST(BranchPredictorTest, AlternatingBranchWithoutHistoryIsHard) {
  BranchPredictor bimodal({12, 0, 512});
  int mispredicts = 0;
  for (int i = 0; i < 1000; ++i)
    if (!bimodal.access(0x4000, i % 2 == 0, 0x5000).direction_correct)
      ++mispredicts;
  EXPECT_GT(mispredicts, 400);  // bimodal cannot learn alternation
}

TEST(BranchPredictorTest, HistoryCapturesAlternation) {
  BranchPredictor gshare({12, 4, 512});
  int late_mispredicts = 0;
  for (int i = 0; i < 2000; ++i) {
    const bool taken = i % 2 == 0;
    const auto o = gshare.access(0x4000, taken, 0x5000);
    if (i >= 1000 && !o.direction_correct) ++late_mispredicts;
  }
  EXPECT_LE(late_mispredicts, 10);  // gshare learns the pattern
}

TEST(BranchPredictorTest, BtbMissOnFirstTakenBranch) {
  BranchPredictor bp({12, 0, 512});
  const auto first = bp.access(0x4000, true, 0x9000);
  EXPECT_FALSE(first.btb_hit);
  const auto second = bp.access(0x4000, true, 0x9000);
  EXPECT_TRUE(second.btb_hit);
  EXPECT_EQ(bp.btb_misses(), 1u);
}

TEST(BranchPredictorTest, TargetChangeMissesBtb) {
  BranchPredictor bp({12, 0, 512});
  bp.access(0x4000, true, 0x9000);
  const auto o = bp.access(0x4000, true, 0xA000);  // new target
  EXPECT_FALSE(o.btb_hit);
}

TEST(BranchPredictorTest, InvalidConfigThrows) {
  EXPECT_THROW(BranchPredictor({0, 0, 512}), std::invalid_argument);
  EXPECT_THROW(BranchPredictor({12, 13, 512}), std::invalid_argument);
  EXPECT_THROW(BranchPredictor({12, 0, 100}), std::invalid_argument);
}

// ---------------------------------------------------------------- core ---

MicroOp alu_at(std::uint64_t iaddr) {
  MicroOp op;
  op.kind = MicroOp::Kind::kAlu;
  op.iaddr = iaddr;
  return op;
}

TEST(CoreTest, CountsInstructionsAndCycles) {
  CoreModel core;
  for (int i = 0; i < 100; ++i) core.execute(alu_at(0x400000));
  EXPECT_EQ(core.counters()[event_index(Event::kInstructions)], 100u);
  EXPECT_GE(core.cycles(), 100u);
}

TEST(CoreTest, BranchEventsCounted) {
  CoreModel core;
  MicroOp br;
  br.kind = MicroOp::Kind::kBranch;
  br.iaddr = 0x400100;
  br.taken = true;
  br.target = 0x400200;
  for (int i = 0; i < 50; ++i) core.execute(br);
  const auto& c = core.counters();
  EXPECT_EQ(c[event_index(Event::kBranchInstructions)], 50u);
  EXPECT_EQ(c[event_index(Event::kBranchLoads)], 50u);
  EXPECT_LE(c[event_index(Event::kBranchMisses)], 3u);  // learned quickly
}

TEST(CoreTest, LoadMissHierarchy) {
  CoreModel core;
  MicroOp ld;
  ld.kind = MicroOp::Kind::kLoad;
  ld.iaddr = 0x400000;
  ld.daddr = 0x10000000;
  core.execute(ld);
  const auto& c = core.counters();
  EXPECT_EQ(c[event_index(Event::kL1DcacheLoads)], 1u);
  EXPECT_EQ(c[event_index(Event::kL1DcacheLoadMisses)], 1u);
  // Two LLC loads: the cold instruction fetch fill plus the data fill.
  EXPECT_EQ(c[event_index(Event::kLlcLoads)], 2u);
  EXPECT_EQ(c[event_index(Event::kLlcLoadMisses)], 2u);
  EXPECT_EQ(c[event_index(Event::kNodeLoads)], 2u);
  // Second access to the same line hits L1: LLC traffic unchanged.
  core.execute(ld);
  EXPECT_EQ(c[event_index(Event::kL1DcacheLoadMisses)], 1u);
}

TEST(CoreTest, StoreMissCountsNodeStore) {
  CoreModel core;
  MicroOp st;
  st.kind = MicroOp::Kind::kStore;
  st.iaddr = 0x400000;
  st.daddr = 0x20000000;
  core.execute(st);
  const auto& c = core.counters();
  EXPECT_EQ(c[event_index(Event::kL1DcacheStores)], 1u);
  EXPECT_EQ(c[event_index(Event::kLlcStores)], 1u);
  EXPECT_EQ(c[event_index(Event::kNodeStores)], 1u);
}

TEST(CoreTest, RemoteNodeAccessCountsNodeMiss) {
  CoreModel core;
  MicroOp ld;
  ld.kind = MicroOp::Kind::kLoad;
  ld.iaddr = 0x400000;
  ld.daddr = 0x30000000;
  ld.remote_node = true;
  core.execute(ld);
  EXPECT_EQ(core.counters()[event_index(Event::kNodeLoadMisses)], 1u);
}

TEST(CoreTest, PageFaultOncePerPage) {
  CoreModel core;
  MicroOp ld;
  ld.kind = MicroOp::Kind::kLoad;
  ld.iaddr = 0x400000;
  for (int rep = 0; rep < 3; ++rep) {
    for (int page = 0; page < 5; ++page) {
      ld.daddr = 0x40000000 + static_cast<std::uint64_t>(page) * 4096;
      core.execute(ld);
    }
  }
  // 5 data pages + 1 code page.
  EXPECT_EQ(core.counters()[event_index(Event::kPageFaults)], 6u);
}

TEST(CoreTest, MajorFaultFlagged) {
  CoreModel core;
  MicroOp ld;
  ld.kind = MicroOp::Kind::kLoad;
  ld.iaddr = 0x400000;
  ld.daddr = 0x50000000;
  ld.cold_major = true;
  core.execute(ld);
  const auto& c = core.counters();
  EXPECT_EQ(c[event_index(Event::kMajorFaults)], 1u);
  EXPECT_EQ(c[event_index(Event::kPageFaults)], 2u);  // + code page (minor)
  EXPECT_EQ(c[event_index(Event::kMinorFaults)], 1u);
}

TEST(CoreTest, AlignmentFaultCounted) {
  CoreModel core;
  MicroOp ld;
  ld.kind = MicroOp::Kind::kLoad;
  ld.iaddr = 0x400000;
  ld.daddr = 0x60000001;
  ld.unaligned = true;
  core.execute(ld);
  EXPECT_EQ(core.counters()[event_index(Event::kAlignmentFaults)], 1u);
}

TEST(CoreTest, ContextSwitchAfterQuantum) {
  CoreConfig cfg;
  cfg.context_switch_quantum = 1000;
  CoreModel core(cfg);
  for (int i = 0; i < 3000; ++i) core.execute(alu_at(0x400000));
  EXPECT_GE(core.counters()[event_index(Event::kContextSwitches)], 2u);
}

TEST(CoreTest, DerivedClockCounters) {
  CoreModel core;
  for (int i = 0; i < 64; ++i) core.execute(alu_at(0x400000));
  const auto& c = core.counters();
  EXPECT_EQ(c[event_index(Event::kRefCycles)],
            c[event_index(Event::kCycles)]);
  EXPECT_EQ(c[event_index(Event::kBusCycles)],
            c[event_index(Event::kCycles)] / core.config().bus_ratio);
}

TEST(CoreTest, StallAccountingSplitsFrontendBackend) {
  CoreModel core;
  MicroOp ld;
  ld.kind = MicroOp::Kind::kLoad;
  ld.iaddr = 0x400000;
  ld.daddr = 0x70000000;
  core.execute(ld);  // icache miss (frontend) + dcache chain (backend)
  const auto& c = core.counters();
  EXPECT_GT(c[event_index(Event::kStalledCyclesFrontend)], 0u);
  EXPECT_GT(c[event_index(Event::kStalledCyclesBackend)], 0u);
  EXPECT_LE(c[event_index(Event::kStalledCyclesFrontend)] +
                c[event_index(Event::kStalledCyclesBackend)],
            c[event_index(Event::kCycles)]);
}

TEST(CoreTest, ClearCountersKeepsState) {
  CoreModel core;
  MicroOp ld;
  ld.kind = MicroOp::Kind::kLoad;
  ld.iaddr = 0x400000;
  ld.daddr = 0x80000000;
  core.execute(ld);
  core.clear_counters();
  EXPECT_EQ(core.counters()[event_index(Event::kInstructions)], 0u);
  // Same line again: still a cache hit (state survived).
  core.execute(ld);
  EXPECT_EQ(core.counters()[event_index(Event::kL1DcacheLoadMisses)], 0u);
}

TEST(CoreTest, ResetIsColdMachine) {
  CoreModel core;
  MicroOp ld;
  ld.kind = MicroOp::Kind::kLoad;
  ld.iaddr = 0x400000;
  ld.daddr = 0x90000000;
  core.execute(ld);
  core.reset();
  core.execute(ld);
  EXPECT_EQ(core.counters()[event_index(Event::kL1DcacheLoadMisses)], 1u);
  EXPECT_EQ(core.counters()[event_index(Event::kPageFaults)], 2u);
}

TEST(CoreTest, PrefetchCountsNoStallCycles) {
  CoreModel core;
  MicroOp pf;
  pf.kind = MicroOp::Kind::kPrefetch;
  pf.iaddr = 0x400000;
  pf.daddr = 0xA0000000;
  core.execute(pf);
  const auto before = core.cycles();
  pf.daddr = 0xA0010000;
  core.execute(pf);
  const auto& c = core.counters();
  EXPECT_EQ(c[event_index(Event::kL1DcachePrefetches)], 2u);
  EXPECT_EQ(c[event_index(Event::kNodePrefetches)], 2u);
  // Second prefetch (code page warm): only the base cycle.
  EXPECT_EQ(core.cycles() - before, 1u);
}

}  // namespace
}  // namespace smart2

// Tests for src/ml: metrics, the five classifiers, AdaBoost, and the
// feature-reduction pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "ml/adaboost.hpp"
#include "ml/decision_tree.hpp"
#include "ml/feature_selection.hpp"
#include "ml/logistic.hpp"
#include "ml/metrics.hpp"
#include "ml/mlp.hpp"
#include "ml/onerule.hpp"
#include "ml/ripper.hpp"

namespace smart2 {
namespace {

/// Two-class Gaussian blobs, linearly separable up to `noise`.
Dataset make_blobs(std::size_t n_per_class, double separation, double noise,
                   std::uint64_t seed, std::size_t dims = 3) {
  std::vector<std::string> names;
  for (std::size_t f = 0; f < dims; ++f)
    names.push_back("f" + std::to_string(f));
  Dataset d(std::move(names), {"neg", "pos"});
  Rng rng(seed);
  std::vector<double> x(dims);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (int cls = 0; cls < 2; ++cls) {
      const double center = cls == 0 ? 0.0 : separation;
      for (std::size_t f = 0; f < dims; ++f)
        x[f] = rng.gaussian(f == 0 ? center : 0.0, f == 0 ? noise : 1.0);
      d.add(x, cls);
    }
  }
  return d;
}

/// A 3-class dataset separable along feature 0.
Dataset make_three_class(std::size_t n_per_class, std::uint64_t seed) {
  Dataset d({"f0", "f1"}, {"a", "b", "c"});
  Rng rng(seed);
  std::vector<double> x(2);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (int cls = 0; cls < 3; ++cls) {
      x[0] = rng.gaussian(cls * 4.0, 0.7);
      x[1] = rng.gaussian(0.0, 1.0);
      d.add(x, cls);
    }
  }
  return d;
}

double accuracy_on(const Classifier& c, const Dataset& d) {
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i)
    if (c.predict(d.features(i)) == d.label(i)) ++correct;
  return static_cast<double>(correct) / static_cast<double>(d.size());
}

// ------------------------------------------------------------ metrics ----

TEST(MetricsTest, ConfusionCountsAndAccuracy) {
  ConfusionMatrix cm(2);
  cm.add(1, 1);
  cm.add(1, 1);
  cm.add(1, 0);
  cm.add(0, 0);
  cm.add(0, 1);
  EXPECT_EQ(cm.count(1, 1), 2u);
  EXPECT_EQ(cm.count(1, 0), 1u);
  EXPECT_EQ(cm.total(), 5u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 3.0 / 5.0);
}

TEST(MetricsTest, PrecisionRecallF) {
  ConfusionMatrix cm(2);
  // 3 TP, 1 FP, 2 FN, 4 TN.
  for (int i = 0; i < 3; ++i) cm.add(1, 1);
  cm.add(0, 1);
  for (int i = 0; i < 2; ++i) cm.add(1, 0);
  for (int i = 0; i < 4; ++i) cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 3.0 / 5.0);
  const double f = 2.0 * (0.75 * 0.6) / (0.75 + 0.6);
  EXPECT_NEAR(cm.f_measure(1), f, 1e-12);
}

TEST(MetricsTest, DegenerateClassesGiveZero) {
  ConfusionMatrix cm(2);
  cm.add(0, 0);
  EXPECT_DOUBLE_EQ(cm.precision(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(1), 0.0);
  EXPECT_DOUBLE_EQ(cm.f_measure(1), 0.0);
}

TEST(MetricsTest, OutOfRangeThrows) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), std::out_of_range);
  EXPECT_THROW(cm.add(0, -1), std::out_of_range);
}

TEST(MetricsTest, AucPerfectRanking) {
  const std::vector<int> labels = {0, 0, 1, 1};
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(roc_auc(labels, scores), 1.0);
}

TEST(MetricsTest, AucInvertedRanking) {
  const std::vector<int> labels = {1, 1, 0, 0};
  const std::vector<double> scores = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(roc_auc(labels, scores), 0.0);
}

TEST(MetricsTest, AucAllTiedIsHalf) {
  const std::vector<int> labels = {0, 1, 0, 1};
  const std::vector<double> scores = {0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(roc_auc(labels, scores), 0.5);
}

TEST(MetricsTest, AucSingleClassIsHalf) {
  const std::vector<int> labels = {1, 1};
  const std::vector<double> scores = {0.1, 0.9};
  EXPECT_DOUBLE_EQ(roc_auc(labels, scores), 0.5);
}

TEST(MetricsTest, AucKnownMixedValue) {
  // pos scores {0.8, 0.4}, neg {0.6, 0.2}: pairs won = 3 of 4.
  const std::vector<int> labels = {1, 0, 1, 0};
  const std::vector<double> scores = {0.8, 0.6, 0.4, 0.2};
  EXPECT_DOUBLE_EQ(roc_auc(labels, scores), 0.75);
}

TEST(MetricsTest, RocCurveEndpoints) {
  const std::vector<int> labels = {0, 1, 0, 1};
  const std::vector<double> scores = {0.2, 0.9, 0.4, 0.7};
  const auto curve = roc_curve(labels, scores);
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
}

TEST(MetricsTest, MacroFSkipsAbsentClasses) {
  ConfusionMatrix cm(3);
  cm.add(0, 0);
  cm.add(1, 1);
  // class 2 absent
  EXPECT_NEAR(cm.macro_f_measure(), 1.0, 1e-12);
}

// --------------------------------------------- classifiers, shared -------

struct ClassifierFactory {
  const char* name;
  std::unique_ptr<Classifier> (*make)();
};

std::unique_ptr<Classifier> make_j48() {
  return std::make_unique<DecisionTree>();
}
std::unique_ptr<Classifier> make_jrip() { return std::make_unique<Ripper>(); }
std::unique_ptr<Classifier> make_mlp() {
  Mlp::Params p;
  p.epochs = 60;
  return std::make_unique<Mlp>(p);
}
std::unique_ptr<Classifier> make_oner() { return std::make_unique<OneR>(); }
std::unique_ptr<Classifier> make_mlr() {
  return std::make_unique<LogisticRegression>();
}

class AllClassifiersTest : public ::testing::TestWithParam<ClassifierFactory> {
};

TEST_P(AllClassifiersTest, LearnsSeparableBlobs) {
  const Dataset train = make_blobs(120, 6.0, 1.0, 11);
  const Dataset test = make_blobs(60, 6.0, 1.0, 12);
  auto c = GetParam().make();
  c->fit(train);
  EXPECT_GT(accuracy_on(*c, test), 0.9) << GetParam().name;
}

TEST_P(AllClassifiersTest, ProbabilitiesFormDistribution) {
  const Dataset train = make_blobs(60, 5.0, 1.0, 13);
  auto c = GetParam().make();
  c->fit(train);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto p = c->predict_proba(train.features(i));
    ASSERT_EQ(p.size(), 2u);
    double sum = 0.0;
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0 + 1e-9);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6) << GetParam().name;
  }
}

TEST_P(AllClassifiersTest, PredictBeforeFitThrows) {
  auto c = GetParam().make();
  const std::vector<double> x = {0.0, 0.0, 0.0};
  EXPECT_THROW((void)c->predict(x), std::logic_error);
}

TEST_P(AllClassifiersTest, CloneUntrainedIsFresh) {
  const Dataset train = make_blobs(40, 5.0, 1.0, 14);
  auto c = GetParam().make();
  c->fit(train);
  auto clone = c->clone_untrained();
  EXPECT_FALSE(clone->trained());
  EXPECT_EQ(clone->name(), c->name());
  clone->fit(train);
  EXPECT_TRUE(clone->trained());
}

TEST_P(AllClassifiersTest, EmptyTrainingSetThrows) {
  Dataset empty({"f0", "f1", "f2"}, {"neg", "pos"});
  auto c = GetParam().make();
  EXPECT_THROW(c->fit(empty), std::invalid_argument);
}

TEST_P(AllClassifiersTest, WeightCountMismatchThrows) {
  const Dataset train = make_blobs(10, 5.0, 1.0, 15);
  auto c = GetParam().make();
  const std::vector<double> w(3, 1.0);
  EXPECT_THROW(c->fit_weighted(train, w), std::invalid_argument);
}

TEST_P(AllClassifiersTest, DeterministicAcrossRuns) {
  const Dataset train = make_blobs(60, 4.0, 1.2, 16);
  const Dataset test = make_blobs(30, 4.0, 1.2, 17);
  auto a = GetParam().make();
  auto b = GetParam().make();
  a->fit(train);
  b->fit(train);
  for (std::size_t i = 0; i < test.size(); ++i)
    EXPECT_EQ(a->predict(test.features(i)), b->predict(test.features(i)))
        << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    AllTypes, AllClassifiersTest,
    ::testing::Values(ClassifierFactory{"J48", &make_j48},
                      ClassifierFactory{"JRip", &make_jrip},
                      ClassifierFactory{"MLP", &make_mlp},
                      ClassifierFactory{"OneR", &make_oner},
                      ClassifierFactory{"MLR", &make_mlr}),
    [](const ::testing::TestParamInfo<ClassifierFactory>& param_info) {
      return param_info.param.name;
    });

// --------------------------------------------------- specific learners ---

TEST(OneRTest, PicksTheInformativeFeature) {
  // Feature 1 separates; features 0 and 2 are noise.
  Dataset d({"noise0", "signal", "noise2"}, {"neg", "pos"});
  Rng rng(21);
  std::vector<double> x(3);
  for (int i = 0; i < 200; ++i) {
    const int cls = i % 2;
    x[0] = rng.gaussian(0.0, 1.0);
    x[1] = cls == 0 ? rng.gaussian(-3.0, 0.5) : rng.gaussian(3.0, 0.5);
    x[2] = rng.gaussian(0.0, 1.0);
    d.add(x, cls);
  }
  OneR c;
  c.fit(d);
  EXPECT_EQ(c.rule_feature(), 1u);
}

TEST(OneRTest, RespectsInstanceWeights) {
  // Unweighted, feature 0 and 1 tie-ish; weighting flips the importance.
  Dataset d({"f"}, {"neg", "pos"});
  d.add(std::vector<double>{0.0}, 0);
  d.add(std::vector<double>{1.0}, 0);
  d.add(std::vector<double>{2.0}, 1);
  d.add(std::vector<double>{3.0}, 1);
  OneR c(OneR::Params{.min_bucket_size = 1.0});
  const std::vector<double> w = {5.0, 5.0, 5.0, 5.0};
  c.fit_weighted(d, w);
  EXPECT_EQ(c.predict(std::vector<double>{0.0}), 0);
  EXPECT_EQ(c.predict(std::vector<double>{3.0}), 1);
}

TEST(DecisionTreeTest, PureNodeIsLeaf) {
  Dataset d({"f"}, {"neg", "pos"});
  for (int i = 0; i < 10; ++i) d.add(std::vector<double>{double(i)}, 0);
  DecisionTree t;
  t.fit(d);
  EXPECT_EQ(t.node_count(), 1u);
  EXPECT_EQ(t.depth(), 0u);
}

TEST(DecisionTreeTest, SplitsOnThreshold) {
  Dataset d({"f"}, {"neg", "pos"});
  for (int i = 0; i < 20; ++i) d.add(std::vector<double>{double(i)}, i < 10 ? 0 : 1);
  DecisionTree t;
  t.fit(d);
  EXPECT_EQ(t.predict(std::vector<double>{2.0}), 0);
  EXPECT_EQ(t.predict(std::vector<double>{17.0}), 1);
  EXPECT_GE(t.depth(), 1u);
}

TEST(DecisionTreeTest, MaxDepthIsRespected) {
  const Dataset d = make_blobs(100, 2.0, 2.0, 31, 4);
  DecisionTree t(DecisionTree::Params{.max_depth = 2});
  t.fit(d);
  EXPECT_LE(t.depth(), 2u);
}

TEST(DecisionTreeTest, PruningShrinksTheTree) {
  const Dataset d = make_blobs(150, 1.5, 2.0, 32, 4);  // noisy
  DecisionTree pruned(DecisionTree::Params{.prune = true});
  DecisionTree unpruned(DecisionTree::Params{.prune = false});
  pruned.fit(d);
  unpruned.fit(d);
  EXPECT_LE(pruned.node_count(), unpruned.node_count());
}

TEST(DecisionTreeTest, C45AddedErrorsMatchesKnownValues) {
  // addErrs(total, 0, 0.25) = total * (1 - 0.25^(1/total)).
  EXPECT_NEAR(c45_added_errors(10.0, 0.0, 0.25),
              10.0 * (1.0 - std::pow(0.25, 0.1)), 1e-9);
  // Errors close to total saturate.
  EXPECT_NEAR(c45_added_errors(10.0, 9.8, 0.25), 0.2, 1e-9);
  // Monotone in errors.
  EXPECT_LT(c45_added_errors(20.0, 1.0, 0.25),
            c45_added_errors(20.0, 5.0, 0.25) + 4.0);
}

TEST(DecisionTreeTest, NormalQuantileMatchesKnownValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(normal_quantile(0.75), 0.6744897502, 1e-6);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(normal_quantile(0.025), -1.959963985, 1e-6);
  EXPECT_THROW(normal_quantile(0.0), std::invalid_argument);
  EXPECT_THROW(normal_quantile(1.0), std::invalid_argument);
}

TEST(RipperTest, LearnsIntervalRule) {
  // Positive class inside [10, 20].
  Dataset d({"f"}, {"neg", "pos"});
  Rng rng(41);
  for (int i = 0; i < 300; ++i) {
    const double v = rng.uniform(0.0, 30.0);
    d.add(std::vector<double>{v}, v >= 10.0 && v <= 20.0 ? 1 : 0);
  }
  Ripper c;
  c.fit(d);
  EXPECT_EQ(c.predict(std::vector<double>{15.0}), 1);
  EXPECT_EQ(c.predict(std::vector<double>{5.0}), 0);
  EXPECT_EQ(c.predict(std::vector<double>{25.0}), 0);
  EXPECT_GE(c.rules().size(), 1u);
}

TEST(RipperTest, DefaultClassIsMajority) {
  Dataset d({"f"}, {"neg", "pos"});
  Rng rng(42);
  for (int i = 0; i < 100; ++i)
    d.add(std::vector<double>{rng.uniform(0.0, 1.0)}, 0);
  for (int i = 0; i < 10; ++i)
    d.add(std::vector<double>{rng.uniform(10.0, 11.0)}, 1);
  Ripper c;
  c.fit(d);
  EXPECT_EQ(c.default_class(), 0);
}

TEST(RipperTest, ConditionCountMatchesRules) {
  const Dataset d = make_blobs(100, 5.0, 1.0, 43);
  Ripper c;
  c.fit(d);
  std::size_t total = 0;
  for (const auto& r : c.rules()) total += r.conditions.size();
  EXPECT_EQ(c.condition_count(), total);
}

TEST(MlpTest, LearnsNonLinearXor) {
  // XOR-style problem no linear model can solve.
  Dataset d({"a", "b"}, {"neg", "pos"});
  Rng rng(51);
  std::vector<double> x(2);
  for (int i = 0; i < 400; ++i) {
    const int a = static_cast<int>(rng.uniform_index(2));
    const int b = static_cast<int>(rng.uniform_index(2));
    x[0] = a + rng.gaussian(0.0, 0.1);
    x[1] = b + rng.gaussian(0.0, 0.1);
    d.add(x, a ^ b);
  }
  Mlp::Params p;
  p.hidden = 8;
  p.epochs = 300;
  Mlp c(p);
  c.fit(d);
  EXPECT_GT(accuracy_on(c, d), 0.95);
}

TEST(MlpTest, HiddenDefaultsToWekaRule) {
  const Dataset d = make_blobs(40, 5.0, 1.0, 52, 6);
  Mlp c;
  c.fit(d);
  EXPECT_EQ(c.hidden_units(), (6 + 2) / 2 + 1);
}

TEST(MlrTest, MulticlassSoftmax) {
  const Dataset train = make_three_class(150, 61);
  const Dataset test = make_three_class(50, 62);
  LogisticRegression c;
  c.fit(train);
  EXPECT_GT(accuracy_on(c, test), 0.9);
  const auto p = c.predict_proba(test.features(0));
  EXPECT_EQ(p.size(), 3u);
}

TEST(MlrTest, CoefficientsExposedForHardware) {
  const Dataset d = make_blobs(50, 5.0, 1.0, 63);
  LogisticRegression c;
  c.fit(d);
  EXPECT_EQ(c.coefficients().size(), 2u);
  EXPECT_EQ(c.coefficients()[0].size(), 3u);
  EXPECT_EQ(c.bias().size(), 2u);
}

// ----------------------------------------------------------- AdaBoost ----

TEST(AdaBoostTest, BoostsWeakStumps) {
  // Depth-1 trees are weak on this 2-blob diagonal problem; boosting helps.
  Dataset d({"a", "b"}, {"neg", "pos"});
  Rng rng(71);
  std::vector<double> x(2);
  for (int i = 0; i < 400; ++i) {
    const int cls = i % 2;
    x[0] = rng.gaussian(cls ? 1.2 : -1.2, 1.0);
    x[1] = rng.gaussian(cls ? 1.2 : -1.2, 1.0);
    d.add(x, cls);
  }
  Rng split_rng(72);
  auto [train, test] = d.stratified_split(0.7, split_rng);

  DecisionTree::Params weak;
  weak.max_depth = 1;
  auto stump = std::make_unique<DecisionTree>(weak);
  DecisionTree single(weak);
  single.fit(train);

  AdaBoost::Params bp;
  bp.rounds = 20;
  AdaBoost boosted(std::move(stump), bp);
  boosted.fit(train);

  EXPECT_GE(accuracy_on(boosted, test) + 1e-9, accuracy_on(single, test));
  EXPECT_GT(boosted.round_count(), 1u);
}

TEST(AdaBoostTest, NullPrototypeThrows) {
  EXPECT_THROW(AdaBoost(nullptr), std::invalid_argument);
}

TEST(AdaBoostTest, PerfectBaseStopsEarly) {
  const Dataset d = make_blobs(100, 10.0, 0.3, 73);
  AdaBoost::Params bp;
  bp.rounds = 10;
  AdaBoost boosted(std::make_unique<DecisionTree>(), bp);
  boosted.fit(d);
  EXPECT_LE(boosted.round_count(), 10u);
  EXPECT_GT(accuracy_on(boosted, d), 0.98);
}

TEST(AdaBoostTest, NameIncludesBase) {
  AdaBoost b(std::make_unique<OneR>());
  EXPECT_EQ(b.name(), "AdaBoost(OneR)");
}

TEST(AdaBoostTest, ResamplingModeWorks) {
  const Dataset d = make_blobs(80, 5.0, 1.0, 74);
  AdaBoost::Params bp;
  bp.rounds = 5;
  bp.force_resampling = true;
  AdaBoost boosted(std::make_unique<DecisionTree>(), bp);
  boosted.fit(d);
  EXPECT_GT(accuracy_on(boosted, d), 0.9);
}

TEST(AdaBoostTest, CloneUntrainedKeepsStructure) {
  AdaBoost::Params bp;
  bp.rounds = 7;
  AdaBoost b(std::make_unique<OneR>(), bp);
  auto clone = b.clone_untrained();
  EXPECT_EQ(clone->name(), "AdaBoost(OneR)");
  const Dataset d = make_blobs(40, 5.0, 1.0, 75);
  clone->fit(d);
  EXPECT_TRUE(clone->trained());
}

// -------------------------------------------------- feature selection ----

/// Dataset where feature relevance is graded: f0 strong, f1 weak, f2 noise,
/// f3 duplicates f0.
Dataset make_graded(std::uint64_t seed) {
  Dataset d({"strong", "weak", "noise", "dup"}, {"neg", "pos"});
  Rng rng(seed);
  std::vector<double> x(4);
  for (int i = 0; i < 400; ++i) {
    const int cls = i % 2;
    x[0] = rng.gaussian(cls * 4.0, 1.0);
    x[1] = rng.gaussian(cls * 1.0, 1.0);
    x[2] = rng.gaussian(0.0, 1.0);
    x[3] = x[0] * 2.0 + rng.gaussian(0.0, 0.01);
    d.add(x, cls);
  }
  return d;
}

TEST(FeatureSelectionTest, CorrelationRanksStrongFirst) {
  const Dataset d = make_graded(81);
  const auto ranked = correlation_attribute_eval(d);
  // strong (0) or its duplicate (3) must rank top; noise (2) last.
  EXPECT_TRUE(ranked[0].index == 0 || ranked[0].index == 3);
  EXPECT_EQ(ranked.back().index, 2u);
}

TEST(FeatureSelectionTest, SelectTopReturnsRequestedCount) {
  const Dataset d = make_graded(82);
  EXPECT_EQ(select_top_correlated(d, 2).size(), 2u);
  EXPECT_EQ(select_top_correlated(d, 99).size(), 4u);
}

TEST(FeatureSelectionTest, MulticlassCorrelationFindsDiscriminator) {
  const Dataset d = make_three_class(100, 83);
  const auto ranked = correlation_attribute_eval(d);
  EXPECT_EQ(ranked[0].index, 0u);  // f0 separates the three classes
}

TEST(FeatureSelectionTest, PcaExplainsVarianceInOrder) {
  const Dataset d = make_graded(84);
  const auto p = pca(d);
  ASSERT_EQ(p.eigenvalues.size(), 4u);
  for (std::size_t i = 1; i < p.eigenvalues.size(); ++i)
    EXPECT_GE(p.eigenvalues[i - 1], p.eigenvalues[i] - 1e-9);
  double total = 0.0;
  for (double r : p.explained_ratio) total += r;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(FeatureSelectionTest, ReduceFiltersRedundantDuplicate) {
  const Dataset d = make_graded(85);
  // Ask for 2 features; the near-perfect duplicate pair (strong, dup) must
  // not both be chosen.
  const auto picked = reduce_features(d, 4, 2);
  ASSERT_EQ(picked.size(), 2u);
  const bool both_dup =
      (picked[0] == 0 && picked[1] == 3) || (picked[0] == 3 && picked[1] == 0);
  EXPECT_FALSE(both_dup);
}

TEST(FeatureSelectionTest, ReduceReturnsIndicesIntoOriginal) {
  const Dataset d = make_graded(86);
  const auto picked = reduce_features(d, 3, 3);
  for (std::size_t f : picked) EXPECT_LT(f, d.feature_count());
}

TEST(FeatureSelectionTest, EmptyDatasetThrows) {
  Dataset d({"f"}, {"a", "b"});
  EXPECT_THROW(correlation_attribute_eval(d), std::invalid_argument);
}

// ------------------------------------ property sweep: weighted training --

class WeightedTrainingTest
    : public ::testing::TestWithParam<ClassifierFactory> {};

TEST_P(WeightedTrainingTest, ZeroWeightInstancesAreIgnorable) {
  // Class-1 cluster overlapping class 0, but all its instances have zero
  // weight: the learner should behave as if trained on class 0's side only.
  Dataset d({"f"}, {"neg", "pos"});
  std::vector<double> w;
  Rng rng(91);
  for (int i = 0; i < 100; ++i) {
    d.add(std::vector<double>{rng.gaussian(0.0, 1.0)}, 0);
    w.push_back(1.0);
  }
  for (int i = 0; i < 100; ++i) {
    d.add(std::vector<double>{rng.gaussian(8.0, 1.0)}, 1);
    w.push_back(1.0);
  }
  // Poisoned points: class 1 right on top of class 0, zero weight.
  for (int i = 0; i < 50; ++i) {
    d.add(std::vector<double>{rng.gaussian(0.0, 0.3)}, 1);
    w.push_back(0.0);
  }
  auto c = GetParam().make();
  c->fit_weighted(d, w);
  // The region around 0 must still be classified as negative.
  int neg = 0;
  for (int i = 0; i < 20; ++i)
    if (c->predict(std::vector<double>{rng.gaussian(0.0, 0.2)}) == 0) ++neg;
  EXPECT_GE(neg, 16) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    WeightAware, WeightedTrainingTest,
    ::testing::Values(ClassifierFactory{"J48", &make_j48},
                      ClassifierFactory{"OneR", &make_oner},
                      ClassifierFactory{"MLR", &make_mlr},
                      ClassifierFactory{"MLP", &make_mlp}),
    [](const ::testing::TestParamInfo<ClassifierFactory>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace smart2

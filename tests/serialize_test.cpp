// Tests for ml/serialize: round-tripping every classifier type and the
// extension learners (NaiveBayes, Bagging).
#include <gtest/gtest.h>

#include <filesystem>

#include "ml/adaboost.hpp"
#include "ml/bagging.hpp"
#include "ml/decision_tree.hpp"
#include "ml/logistic.hpp"
#include "ml/mlp.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/onerule.hpp"
#include "ml/ripper.hpp"
#include "ml/serialize.hpp"

namespace smart2 {
namespace {

Dataset make_blobs(std::size_t n_per_class, std::uint64_t seed,
                   std::size_t dims = 3) {
  std::vector<std::string> names;
  for (std::size_t f = 0; f < dims; ++f)
    names.push_back("f" + std::to_string(f));
  Dataset d(std::move(names), {"neg", "pos"});
  Rng rng(seed);
  std::vector<double> x(dims);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (int cls = 0; cls < 2; ++cls) {
      for (std::size_t f = 0; f < dims; ++f)
        x[f] = rng.gaussian(f == 0 ? cls * 5.0 : 0.0, 1.2);
      d.add(x, cls);
    }
  }
  return d;
}

struct Factory {
  const char* label;
  std::unique_ptr<Classifier> (*make)();
};

std::unique_ptr<Classifier> f_oner() { return std::make_unique<OneR>(); }
std::unique_ptr<Classifier> f_j48() {
  return std::make_unique<DecisionTree>();
}
std::unique_ptr<Classifier> f_jrip() { return std::make_unique<Ripper>(); }
std::unique_ptr<Classifier> f_mlp() {
  Mlp::Params p;
  p.epochs = 30;
  return std::make_unique<Mlp>(p);
}
std::unique_ptr<Classifier> f_mlr() {
  return std::make_unique<LogisticRegression>();
}
std::unique_ptr<Classifier> f_nb() { return std::make_unique<NaiveBayes>(); }
std::unique_ptr<Classifier> f_boost() {
  AdaBoost::Params p;
  p.rounds = 4;
  return std::make_unique<AdaBoost>(std::make_unique<DecisionTree>(), p);
}
std::unique_ptr<Classifier> f_bag() {
  Bagging::Params p;
  p.bags = 4;
  return std::make_unique<Bagging>(std::make_unique<OneR>(), p);
}

class SerializeRoundTripTest : public ::testing::TestWithParam<Factory> {};

TEST_P(SerializeRoundTripTest, PredictionsSurviveRoundTrip) {
  const Dataset train = make_blobs(80, 0xAA);
  const Dataset probe = make_blobs(40, 0xBB);

  auto original = GetParam().make();
  original->fit(train);

  const std::string text = serialize_classifier(*original);
  const auto restored = deserialize_classifier(text);

  EXPECT_EQ(restored->name(), original->name());
  EXPECT_TRUE(restored->trained());
  EXPECT_EQ(restored->class_count(), original->class_count());
  EXPECT_EQ(restored->feature_count(), original->feature_count());

  for (std::size_t i = 0; i < probe.size(); ++i) {
    const auto x = probe.features(i);
    EXPECT_EQ(restored->predict(x), original->predict(x));
    const auto pa = original->predict_proba(x);
    const auto pb = restored->predict_proba(x);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t c = 0; c < pa.size(); ++c)
      EXPECT_DOUBLE_EQ(pa[c], pb[c]) << GetParam().label;
  }
}

TEST_P(SerializeRoundTripTest, SecondRoundTripIsIdentical) {
  const Dataset train = make_blobs(50, 0xCC);
  auto original = GetParam().make();
  original->fit(train);
  const std::string once = serialize_classifier(*original);
  const std::string twice =
      serialize_classifier(*deserialize_classifier(once));
  EXPECT_EQ(once, twice) << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, SerializeRoundTripTest,
    ::testing::Values(Factory{"OneR", &f_oner}, Factory{"J48", &f_j48},
                      Factory{"JRip", &f_jrip}, Factory{"MLP", &f_mlp},
                      Factory{"MLR", &f_mlr}, Factory{"NaiveBayes", &f_nb},
                      Factory{"AdaBoostJ48", &f_boost},
                      Factory{"BaggingOneR", &f_bag}),
    [](const ::testing::TestParamInfo<Factory>& param_info) {
      return param_info.param.label;
    });

TEST(SerializeTest, UntrainedModelThrows) {
  OneR c;
  EXPECT_THROW(serialize_classifier(c), std::logic_error);
}

TEST(SerializeTest, BadHeaderThrows) {
  EXPECT_THROW(deserialize_classifier(std::string("not-a-model 1 X 2 3")),
               std::runtime_error);
}

TEST(SerializeTest, UnsupportedVersionThrows) {
  EXPECT_THROW(deserialize_classifier(std::string("smart2-model 99 OneR 2 3")),
               std::runtime_error);
}

TEST(SerializeTest, UnknownClassifierNameThrows) {
  EXPECT_THROW(
      deserialize_classifier(std::string("smart2-model 1 Quantum 2 3")),
      std::runtime_error);
}

TEST(SerializeTest, TruncatedBodyThrows) {
  const Dataset train = make_blobs(30, 0xDD);
  DecisionTree tree;
  tree.fit(train);
  std::string text = serialize_classifier(tree);
  text.resize(text.size() / 2);
  EXPECT_THROW(deserialize_classifier(text), std::runtime_error);
}

TEST(SerializeTest, FileRoundTrip) {
  const Dataset train = make_blobs(40, 0xEE);
  Ripper model;
  model.fit(train);
  const std::string path =
      (std::filesystem::temp_directory_path() / "smart2_model_test.txt")
          .string();
  save_classifier(path, model);
  const auto restored = load_classifier(path);
  EXPECT_EQ(restored->name(), "JRip");
  for (std::size_t i = 0; i < train.size(); ++i)
    EXPECT_EQ(restored->predict(train.features(i)),
              model.predict(train.features(i)));
  std::filesystem::remove(path);
}

TEST(SerializeTest, CompositeNameParsing) {
  EXPECT_EQ(make_classifier_by_name("AdaBoost(J48)")->name(), "AdaBoost(J48)");
  EXPECT_EQ(make_classifier_by_name("Bagging(MLR)")->name(), "Bagging(MLR)");
  EXPECT_EQ(make_classifier_by_name("AdaBoost(Bagging(OneR))")->name(),
            "AdaBoost(Bagging(OneR))");
  EXPECT_THROW(make_classifier_by_name("AdaBoost(Quantum)"),
               std::runtime_error);
}

// ------------------------------------------------- extension learners ----

TEST(NaiveBayesTest, LearnsBlobsAndExposesPriors) {
  const Dataset train = make_blobs(100, 0x11);
  const Dataset test = make_blobs(50, 0x12);
  NaiveBayes nb;
  nb.fit(train);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i)
    if (nb.predict(test.features(i)) == test.label(i)) ++correct;
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test.size()), 0.9);
  ASSERT_EQ(nb.priors().size(), 2u);
  EXPECT_NEAR(nb.priors()[0], 0.5, 0.05);
}

TEST(NaiveBayesTest, SurvivesConstantFeature) {
  Dataset d({"c", "f"}, {"neg", "pos"});
  Rng rng(0x13);
  for (int i = 0; i < 60; ++i) {
    const int cls = i % 2;
    d.add(std::vector<double>{5.0, rng.gaussian(cls * 4.0, 1.0)}, cls);
  }
  NaiveBayes nb;
  nb.fit(d);
  const auto p = nb.predict_proba(std::vector<double>{5.0, 4.0});
  EXPECT_GT(p[1], 0.5);
}

TEST(NaiveBayesTest, RespectsWeights) {
  Dataset d({"f"}, {"neg", "pos"});
  std::vector<double> w;
  Rng rng(0x14);
  for (int i = 0; i < 50; ++i) {
    d.add(std::vector<double>{rng.gaussian(0.0, 1.0)}, 0);
    w.push_back(1.0);
  }
  for (int i = 0; i < 50; ++i) {
    d.add(std::vector<double>{rng.gaussian(6.0, 1.0)}, 1);
    w.push_back(1.0);
  }
  // Poison: positive instances at 0, weight zero.
  for (int i = 0; i < 30; ++i) {
    d.add(std::vector<double>{rng.gaussian(0.0, 0.2)}, 1);
    w.push_back(0.0);
  }
  NaiveBayes nb;
  nb.fit_weighted(d, w);
  EXPECT_EQ(nb.predict(std::vector<double>{0.0}), 0);
}

TEST(BaggingTest, ImprovesOverSingleUnstableBase) {
  // Deep unpruned trees are high-variance; bagging stabilizes them.
  Dataset d({"a", "b"}, {"neg", "pos"});
  Rng rng(0x15);
  std::vector<double> x(2);
  for (int i = 0; i < 300; ++i) {
    const int cls = i % 2;
    x[0] = rng.gaussian(cls ? 1.0 : -1.0, 1.1);
    x[1] = rng.gaussian(cls ? 1.0 : -1.0, 1.1);
    d.add(x, cls);
  }
  Rng split_rng(0x16);
  auto [train, test] = d.stratified_split(0.7, split_rng);

  DecisionTree::Params unstable;
  unstable.prune = false;
  unstable.min_leaf_weight = 1.0;
  DecisionTree single(unstable);
  single.fit(train);

  Bagging::Params bp;
  bp.bags = 15;
  Bagging bagged(std::make_unique<DecisionTree>(unstable), bp);
  bagged.fit(train);

  auto acc = [&](const Classifier& c) {
    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i)
      if (c.predict(test.features(i)) == test.label(i)) ++correct;
    return static_cast<double>(correct) / static_cast<double>(test.size());
  };
  EXPECT_GE(acc(bagged) + 0.02, acc(single));
  EXPECT_EQ(bagged.bag_count(), 15u);
}

TEST(BaggingTest, InvalidParamsThrow) {
  EXPECT_THROW(Bagging(nullptr), std::invalid_argument);
  Bagging::Params p;
  p.bags = 0;
  EXPECT_THROW(Bagging(std::make_unique<OneR>(), p), std::invalid_argument);
  p.bags = 3;
  p.sample_fraction = 0.0;
  EXPECT_THROW(Bagging(std::make_unique<OneR>(), p), std::invalid_argument);
}

TEST(BaggingTest, NameReflectsBase) {
  Bagging b(std::make_unique<Ripper>());
  EXPECT_EQ(b.name(), "Bagging(JRip)");
}

}  // namespace
}  // namespace smart2

// Tests for src/common/parallel: thread-pool mechanics, and the bit-exact
// determinism contract — every parallel hot path (cross-validation, tree
// split search, ensembles, batched two-stage inference) must produce the
// same bytes for SMART2_THREADS=1 and SMART2_THREADS=8.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "core/online_detector.hpp"
#include "core/two_stage.hpp"
#include "hpc/dataset_cache.hpp"
#include "ml/adaboost.hpp"
#include "ml/bagging.hpp"
#include "ml/cross_validation.hpp"
#include "ml/decision_tree.hpp"
#include "ml/serialize.hpp"

namespace smart2 {
namespace {

/// Restores the env-derived lane count when a test overrides it.
struct ThreadCountGuard {
  ~ThreadCountGuard() { parallel::set_thread_count(0); }
};

/// Two-class Gaussian blobs, linearly separable up to `noise`.
Dataset make_blobs(std::size_t n_per_class, double separation, double noise,
                   std::uint64_t seed, std::size_t dims = 3) {
  std::vector<std::string> names;
  for (std::size_t f = 0; f < dims; ++f)
    names.push_back("f" + std::to_string(f));
  Dataset d(std::move(names), {"neg", "pos"});
  Rng rng(seed);
  std::vector<double> x(dims);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (int cls = 0; cls < 2; ++cls) {
      const double center = cls == 0 ? 0.0 : separation;
      for (std::size_t f = 0; f < dims; ++f)
        x[f] = rng.gaussian(f == 0 ? center : 0.0, f == 0 ? noise : 1.0);
      d.add(x, cls);
    }
  }
  return d;
}

void expect_eval_eq(const BinaryEval& a, const BinaryEval& b) {
  EXPECT_EQ(a.accuracy, b.accuracy);
  EXPECT_EQ(a.precision, b.precision);
  EXPECT_EQ(a.recall, b.recall);
  EXPECT_EQ(a.f_measure, b.f_measure);
  EXPECT_EQ(a.auc, b.auc);
  EXPECT_EQ(a.performance, b.performance);
}

// ----------------------------------------------------- pool mechanics ---

TEST(ThreadPoolTest, EmptyRangeRunsNothing) {
  ThreadCountGuard guard;
  parallel::set_thread_count(4);
  std::atomic<int> calls{0};
  parallel::parallel_for(0, 0, [&](std::size_t) { ++calls; });
  parallel::parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadCountGuard guard;
  parallel::set_thread_count(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  parallel::parallel_for(0, kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, HonorsNonZeroBegin) {
  ThreadCountGuard guard;
  parallel::set_thread_count(4);
  std::atomic<std::size_t> sum{0};
  parallel::parallel_for(100, 200, [&](std::size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), (100 + 199) * 100 / 2);
}

TEST(ThreadPoolTest, PropagatesException) {
  ThreadCountGuard guard;
  parallel::set_thread_count(4);
  EXPECT_THROW(parallel::parallel_for(0, 1000,
                                      [&](std::size_t i) {
                                        if (i == 637)
                                          throw std::runtime_error("boom");
                                      }),
               std::runtime_error);
  // The pool must stay usable after an exceptional task.
  std::atomic<int> calls{0};
  parallel::parallel_for(0, 64, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 64);
}

TEST(ThreadPoolTest, NestedCallsComplete) {
  ThreadCountGuard guard;
  parallel::set_thread_count(4);
  std::atomic<int> calls{0};
  parallel::parallel_for(0, 8, [&](std::size_t) {
    parallel::parallel_for(0, 16, [&](std::size_t) { ++calls; });
  });
  EXPECT_EQ(calls.load(), 8 * 16);
}

TEST(ThreadPoolTest, ParallelMapKeepsIndexOrder) {
  ThreadCountGuard guard;
  parallel::set_thread_count(4);
  const auto squares = parallel::parallel_map<std::size_t>(
      512, [](std::size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 512u);
  for (std::size_t i = 0; i < squares.size(); ++i)
    ASSERT_EQ(squares[i], i * i);
}

TEST(ThreadPoolTest, SetThreadCountControlsLanes) {
  ThreadCountGuard guard;
  parallel::set_thread_count(1);
  EXPECT_EQ(parallel::thread_count(), 1u);
  parallel::set_thread_count(8);
  EXPECT_EQ(parallel::thread_count(), 8u);
}

TEST(ThreadPoolTest, SerialLaneStillRunsEverything) {
  ThreadCountGuard guard;
  parallel::set_thread_count(1);
  std::size_t calls = 0;  // no atomics needed: single lane
  parallel::parallel_for(0, 1000, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 1000u);
}

// ------------------------------------------- determinism across lanes ---

TEST(ParallelDeterminismTest, CrossValidationIsThreadCountInvariant) {
  ThreadCountGuard guard;
  const Dataset d = make_blobs(120, 2.0, 0.8, 0xC401);

  parallel::set_thread_count(1);
  Rng rng_serial(7);
  DecisionTree proto_serial;
  const auto serial = cross_validate_binary(proto_serial, d, 5, rng_serial);

  parallel::set_thread_count(8);
  Rng rng_pool(7);
  DecisionTree proto_pool;
  const auto pooled = cross_validate_binary(proto_pool, d, 5, rng_pool);

  ASSERT_EQ(serial.folds.size(), pooled.folds.size());
  for (std::size_t f = 0; f < serial.folds.size(); ++f)
    expect_eval_eq(serial.folds[f], pooled.folds[f]);
  expect_eval_eq(serial.mean, pooled.mean);
  EXPECT_EQ(serial.f_stddev, pooled.f_stddev);
}

TEST(ParallelDeterminismTest, TreeStructureIsThreadCountInvariant) {
  ThreadCountGuard guard;
  // Enough rows to cross the parallel split-search threshold.
  const Dataset d = make_blobs(300, 1.5, 1.0, 0x7EE, 6);

  parallel::set_thread_count(1);
  DecisionTree serial;
  serial.fit(d);

  parallel::set_thread_count(8);
  DecisionTree pooled;
  pooled.fit(d);

  EXPECT_EQ(serial.node_count(), pooled.node_count());
  EXPECT_EQ(serial.depth(), pooled.depth());
  EXPECT_EQ(serialize_classifier(serial), serialize_classifier(pooled));
}

TEST(ParallelDeterminismTest, EnsemblesAreThreadCountInvariant) {
  ThreadCountGuard guard;
  const Dataset d = make_blobs(200, 1.2, 1.0, 0xB00);

  parallel::set_thread_count(1);
  AdaBoost ada_serial(std::make_unique<DecisionTree>());
  Bagging bag_serial(std::make_unique<DecisionTree>());
  ada_serial.fit(d);
  bag_serial.fit(d);

  parallel::set_thread_count(8);
  AdaBoost ada_pooled(std::make_unique<DecisionTree>());
  Bagging bag_pooled(std::make_unique<DecisionTree>());
  ada_pooled.fit(d);
  bag_pooled.fit(d);

  EXPECT_EQ(serialize_classifier(ada_serial), serialize_classifier(ada_pooled));
  EXPECT_EQ(serialize_classifier(bag_serial), serialize_classifier(bag_pooled));
}

// -------------------------------------------- two-stage batched paths ---

CollectorConfig fast_collector() {
  CollectorConfig cfg;
  cfg.cycles_per_sample = 20'000;
  cfg.samples_per_run = 2;
  cfg.warmup_cycles = 20'000;
  return cfg;
}

/// Shared small profiled dataset (built once; profiling dominates runtime).
const Dataset& small_dataset() {
  static const Dataset d = [] {
    CorpusConfig corpus;
    corpus.scale = 0.04;  // ~145 apps
    return cached_hpc_dataset(corpus, fast_collector(), /*cache_dir=*/"");
  }();
  return d;
}

const TwoStageHmd& trained_hmd() {
  static const TwoStageHmd hmd = [] {
    Rng rng(101);
    auto [train, test] = small_dataset().stratified_split(0.6, rng);
    TwoStageConfig cfg;
    cfg.stage2_model = "J48";  // fixed model keeps the test fast
    TwoStageHmd h(cfg);
    h.train(train);
    return h;
  }();
  return hmd;
}

void expect_detection_eq(const Detection& a, const Detection& b) {
  EXPECT_EQ(a.is_malware, b.is_malware);
  EXPECT_EQ(a.predicted_class, b.predicted_class);
  EXPECT_EQ(a.stage1_confidence, b.stage1_confidence);
  EXPECT_EQ(a.stage2_score, b.stage2_score);
}

TEST(PredictBatchTest, MatchesSerialDetectForAnyThreadCount) {
  ThreadCountGuard guard;
  const TwoStageHmd& hmd = trained_hmd();
  const Dataset& d = small_dataset();

  parallel::set_thread_count(1);
  const auto serial = hmd.predict_batch(d);
  parallel::set_thread_count(8);
  const auto pooled = hmd.predict_batch(d);

  ASSERT_EQ(serial.size(), d.size());
  ASSERT_EQ(pooled.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    const Detection one = hmd.detect(d.features(i));
    expect_detection_eq(serial[i], one);
    expect_detection_eq(pooled[i], one);
  }
}

TEST(PredictBatchTest, RejectsUntrainedPipeline) {
  TwoStageHmd hmd;
  EXPECT_THROW(hmd.predict_batch(small_dataset()), std::logic_error);
}

TEST(OnlineDetectorBankTest, StreamsMatchLoneDetectors) {
  ThreadCountGuard guard;
  parallel::set_thread_count(8);
  const TwoStageHmd& hmd = trained_hmd();
  const Dataset& d = small_dataset();
  const auto& common = hmd.plan().common;

  constexpr std::size_t kStreams = 3;
  OnlineDetectorBank bank(hmd, kStreams);
  std::vector<OnlineDetector> lone;
  lone.reserve(kStreams);
  for (std::size_t s = 0; s < kStreams; ++s) lone.emplace_back(hmd);

  for (std::size_t tick = 0; tick < 8; ++tick) {
    std::vector<std::vector<double>> windows(kStreams);
    for (std::size_t s = 0; s < kStreams; ++s) {
      const auto row = d.features((tick * kStreams + s) % d.size());
      for (std::size_t f : common) windows[s].push_back(row[f]);
    }
    const auto verdicts = bank.observe_batch(windows);
    ASSERT_EQ(verdicts.size(), kStreams);
    for (std::size_t s = 0; s < kStreams; ++s) {
      const auto expected = lone[s].observe(windows[s]);
      EXPECT_EQ(verdicts[s].window_score, expected.window_score);
      EXPECT_EQ(verdicts[s].smoothed_score, expected.smoothed_score);
      EXPECT_EQ(verdicts[s].alarmed, expected.alarmed);
      EXPECT_EQ(verdicts[s].alarm_edge, expected.alarm_edge);
      EXPECT_EQ(verdicts[s].suspected_class, expected.suspected_class);
    }
  }
  EXPECT_EQ(bank.stream_count(), kStreams);

  bank.reset();
  EXPECT_EQ(bank.alarmed_count(), 0u);
  for (std::size_t s = 0; s < kStreams; ++s)
    EXPECT_EQ(bank.stream(s).windows_observed(), 0u);
}

TEST(OnlineDetectorBankTest, RejectsMismatchedBatch) {
  OnlineDetectorBank bank(trained_hmd(), 2);
  std::vector<std::vector<double>> one_window(1);
  EXPECT_THROW(bank.observe_batch(one_window), std::invalid_argument);
  EXPECT_THROW(OnlineDetectorBank(trained_hmd(), 0), std::invalid_argument);
}

}  // namespace
}  // namespace smart2

// Tests for src/data: Dataset transformations and the standardizer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "data/dataset.hpp"
#include "data/labels.hpp"

namespace smart2 {
namespace {

Dataset make_small() {
  Dataset d({"f0", "f1", "f2"}, {"neg", "pos"});
  d.add(std::vector<double>{1.0, 10.0, 100.0}, 0);
  d.add(std::vector<double>{2.0, 20.0, 200.0}, 1);
  d.add(std::vector<double>{3.0, 30.0, 300.0}, 0);
  d.add(std::vector<double>{4.0, 40.0, 400.0}, 1);
  return d;
}

TEST(DatasetTest, AddAndAccess) {
  const Dataset d = make_small();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.feature_count(), 3u);
  EXPECT_EQ(d.class_count(), 2u);
  EXPECT_DOUBLE_EQ(d.features(1)[2], 200.0);
  EXPECT_EQ(d.label(3), 1);
}

TEST(DatasetTest, AddRejectsWrongWidth) {
  Dataset d({"a", "b"}, {"x", "y"});
  EXPECT_THROW(d.add(std::vector<double>{1.0}, 0), std::invalid_argument);
}

TEST(DatasetTest, AddRejectsBadLabel) {
  Dataset d({"a"}, {"x", "y"});
  EXPECT_THROW(d.add(std::vector<double>{1.0}, 2), std::invalid_argument);
  EXPECT_THROW(d.add(std::vector<double>{1.0}, -1), std::invalid_argument);
}

TEST(DatasetTest, FeatureColumn) {
  const Dataset d = make_small();
  EXPECT_EQ(d.feature_column(1), (std::vector<double>{10.0, 20.0, 30.0, 40.0}));
  EXPECT_THROW(d.feature_column(9), std::out_of_range);
}

TEST(DatasetTest, ClassHistogram) {
  const Dataset d = make_small();
  EXPECT_EQ(d.class_histogram(), (std::vector<std::size_t>{2, 2}));
}

TEST(DatasetTest, SelectFeaturesReordersColumns) {
  const Dataset d = make_small();
  const std::vector<std::size_t> pick = {2, 0};
  const Dataset s = d.select_features(pick);
  EXPECT_EQ(s.feature_count(), 2u);
  EXPECT_EQ(s.feature_names()[0], "f2");
  EXPECT_DOUBLE_EQ(s.features(1)[0], 200.0);
  EXPECT_DOUBLE_EQ(s.features(1)[1], 2.0);
}

TEST(DatasetTest, SelectFeaturesOutOfRangeThrows) {
  const Dataset d = make_small();
  const std::vector<std::size_t> pick = {5};
  EXPECT_THROW(d.select_features(pick), std::out_of_range);
}

TEST(DatasetTest, BinaryViewFiltersAndRelabels) {
  Dataset d({"f"}, {"A", "B", "C"});
  d.add(std::vector<double>{1.0}, 0);
  d.add(std::vector<double>{2.0}, 1);
  d.add(std::vector<double>{3.0}, 2);
  d.add(std::vector<double>{4.0}, 1);
  const Dataset b = d.binary_view(/*positive=*/1, /*negative=*/0);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.class_count(), 2u);
  EXPECT_EQ(b.label(0), 0);
  EXPECT_EQ(b.label(1), 1);
  EXPECT_EQ(b.label(2), 1);
}

TEST(DatasetTest, BinaryViewAnyKeepsEverything) {
  Dataset d({"f"}, {"A", "B", "C"});
  d.add(std::vector<double>{1.0}, 0);
  d.add(std::vector<double>{2.0}, 1);
  d.add(std::vector<double>{3.0}, 2);
  const std::vector<int> positives = {1, 2};
  const Dataset b = d.binary_view_any(positives);
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.label(0), 0);
  EXPECT_EQ(b.label(1), 1);
  EXPECT_EQ(b.label(2), 1);
}

TEST(DatasetTest, StratifiedSplitPreservesClassRatios) {
  Dataset d({"f"}, {"neg", "pos"});
  for (int i = 0; i < 100; ++i) d.add(std::vector<double>{double(i)}, 0);
  for (int i = 0; i < 50; ++i) d.add(std::vector<double>{double(i)}, 1);
  Rng rng(3);
  const auto [train, test] = d.stratified_split(0.6, rng);
  EXPECT_EQ(train.size(), 90u);
  EXPECT_EQ(test.size(), 60u);
  EXPECT_EQ(train.class_histogram(), (std::vector<std::size_t>{60, 30}));
  EXPECT_EQ(test.class_histogram(), (std::vector<std::size_t>{40, 20}));
}

TEST(DatasetTest, StratifiedSplitIsDisjointAndComplete) {
  Dataset d({"f"}, {"neg", "pos"});
  for (int i = 0; i < 40; ++i)
    d.add(std::vector<double>{double(i)}, i % 2);
  Rng rng(4);
  const auto [train, test] = d.stratified_split(0.5, rng);
  std::vector<double> seen;
  for (std::size_t i = 0; i < train.size(); ++i)
    seen.push_back(train.features(i)[0]);
  for (std::size_t i = 0; i < test.size(); ++i)
    seen.push_back(test.features(i)[0]);
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < 40; ++i) EXPECT_DOUBLE_EQ(seen[i], double(i));
}

TEST(DatasetTest, StratifiedSplitBadFractionThrows) {
  const Dataset d = make_small();
  Rng rng(5);
  EXPECT_THROW(d.stratified_split(1.5, rng), std::invalid_argument);
}

TEST(DatasetTest, ResampleWeightedFollowsWeights) {
  Dataset d({"f"}, {"neg", "pos"});
  d.add(std::vector<double>{0.0}, 0);
  d.add(std::vector<double>{1.0}, 1);
  const std::vector<double> w = {0.0, 1.0};
  Rng rng(6);
  const Dataset r = d.resample_weighted(w, 50, rng);
  EXPECT_EQ(r.size(), 50u);
  for (std::size_t i = 0; i < r.size(); ++i) EXPECT_EQ(r.label(i), 1);
}

TEST(DatasetTest, ResampleWeightedSizeMismatchThrows) {
  const Dataset d = make_small();
  const std::vector<double> w = {1.0};
  Rng rng(7);
  EXPECT_THROW(d.resample_weighted(w, 10, rng), std::invalid_argument);
}

TEST(DatasetTest, ShuffleKeepsRowsIntact) {
  Dataset d = make_small();
  Rng rng(8);
  d.shuffle(rng);
  // Every row must still pair feature f0=k with f1=10k, f2=100k.
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto x = d.features(i);
    EXPECT_DOUBLE_EQ(x[1], 10.0 * x[0]);
    EXPECT_DOUBLE_EQ(x[2], 100.0 * x[0]);
  }
}

TEST(DatasetTest, AppendConcatenates) {
  Dataset a = make_small();
  const Dataset b = make_small();
  a.append(b);
  EXPECT_EQ(a.size(), 8u);
}

TEST(DatasetTest, AppendSchemaMismatchThrows) {
  Dataset a = make_small();
  Dataset b({"only"}, {"neg", "pos"});
  EXPECT_THROW(a.append(b), std::invalid_argument);
}

TEST(StandardizerTest, TransformsToZeroMeanUnitVariance) {
  Dataset d({"f0", "f1"}, {"x", "y"});
  d.add(std::vector<double>{1.0, 100.0}, 0);
  d.add(std::vector<double>{2.0, 200.0}, 0);
  d.add(std::vector<double>{3.0, 300.0}, 1);
  Standardizer s;
  s.fit(d);
  const Dataset t = s.transform(d);
  for (std::size_t f = 0; f < 2; ++f) {
    double mean = 0.0;
    for (std::size_t i = 0; i < t.size(); ++i) mean += t.features(i)[f];
    EXPECT_NEAR(mean / 3.0, 0.0, 1e-12);
  }
  EXPECT_NEAR(t.features(2)[0], 1.0, 1e-12);
}

TEST(StandardizerTest, ConstantFeatureMapsToZero) {
  Dataset d({"c"}, {"x", "y"});
  d.add(std::vector<double>{5.0}, 0);
  d.add(std::vector<double>{5.0}, 1);
  Standardizer s;
  s.fit(d);
  EXPECT_DOUBLE_EQ(s.transform(std::vector<double>{5.0})[0], 0.0);
  EXPECT_DOUBLE_EQ(s.transform(std::vector<double>{99.0})[0], 0.0);
}

TEST(StandardizerTest, WidthMismatchThrows) {
  Dataset d({"a", "b"}, {"x", "y"});
  d.add(std::vector<double>{1.0, 2.0}, 0);
  d.add(std::vector<double>{3.0, 4.0}, 1);
  Standardizer s;
  s.fit(d);
  EXPECT_THROW(s.transform(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(LabelsTest, RoundTripNames) {
  for (std::size_t c = 0; c < kNumAppClasses; ++c) {
    const auto cls = static_cast<AppClass>(c);
    const auto parsed = app_class_from_string(to_string(cls));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, cls);
  }
  EXPECT_FALSE(app_class_from_string("Wormhole").has_value());
}

TEST(LabelsTest, MalwareClassesExcludeBenign) {
  for (AppClass c : kMalwareClasses) EXPECT_NE(c, AppClass::kBenign);
  EXPECT_EQ(kMalwareClasses.size(), kNumMalwareClasses);
}

}  // namespace
}  // namespace smart2

// smart2::compiled quantized lowering — the integer path's contracts:
//  * eval_block (SIMD or scalar-forced) equals eval_class per sample for
//    every lowered family, int8 and int16 storage, full and ragged blocks,
//  * SMART2_QUANT parsing, explicit-format validation, unsupported models,
//  * the quantized two-stage pipeline is deterministic across
//    SMART2_THREADS values and SMART2_SIMD modes, and score_epoch_quant
//    agrees with detect() on every row.
//
// NOT tested here: bitwise equality with the double path — quantization is
// lossy by design (DESIGN.md §15); the accuracy cost is measured by
// bench_quantized's degradation sweep instead.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <vector>

#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "core/two_stage.hpp"
#include "hpc/dataset_cache.hpp"
#include "ml/adaboost.hpp"
#include "ml/bagging.hpp"
#include "ml/decision_tree.hpp"
#include "ml/logistic.hpp"
#include "ml/mlp.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/onerule.hpp"
#include "ml/quantized.hpp"
#include "ml/ripper.hpp"
#include "workload/appmodels.hpp"

namespace smart2 {
namespace {

class ScalarModeGuard {
 public:
  ScalarModeGuard() : saved_(simd::scalar_forced()) {}
  ~ScalarModeGuard() { simd::force_scalar(saved_); }

  ScalarModeGuard(const ScalarModeGuard&) = delete;
  ScalarModeGuard& operator=(const ScalarModeGuard&) = delete;

 private:
  bool saved_;
};

/// Scoped SMART2_QUANT value ("" = unset) restoring the prior state.
class QuantEnvGuard {
 public:
  explicit QuantEnvGuard(const char* value) {
    const char* prev = std::getenv("SMART2_QUANT");
    had_ = prev != nullptr;
    if (had_) saved_ = prev;
    if (value != nullptr)
      ::setenv("SMART2_QUANT", value, 1);
    else
      ::unsetenv("SMART2_QUANT");
  }
  ~QuantEnvGuard() {
    if (had_)
      ::setenv("SMART2_QUANT", saved_.c_str(), 1);
    else
      ::unsetenv("SMART2_QUANT");
  }

  QuantEnvGuard(const QuantEnvGuard&) = delete;
  QuantEnvGuard& operator=(const QuantEnvGuard&) = delete;

 private:
  bool had_ = false;
  std::string saved_;
};

/// Two-class Gaussian blobs, linearly separable up to `noise`.
Dataset make_blobs(std::size_t n_per_class, double separation, double noise,
                   std::uint64_t seed, std::size_t dims = 5) {
  std::vector<std::string> names;
  for (std::size_t f = 0; f < dims; ++f)
    names.push_back("f" + std::to_string(f));
  Dataset d(std::move(names), {"neg", "pos"});
  Rng rng(seed);
  std::vector<double> x(dims);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (int cls = 0; cls < 2; ++cls) {
      const double center = cls == 0 ? 0.0 : separation;
      for (std::size_t f = 0; f < dims; ++f)
        x[f] = rng.gaussian(f == 0 ? center : 0.0, f == 0 ? noise : 1.0);
      d.add(x, cls);
    }
  }
  return d;
}

/// A 3-class dataset separable along feature 0 (k > 2 argmax priority).
Dataset make_three_class(std::size_t n_per_class, std::uint64_t seed) {
  Dataset d({"f0", "f1", "f2"}, {"a", "b", "c"});
  Rng rng(seed);
  std::vector<double> x(3);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (int cls = 0; cls < 3; ++cls) {
      x[0] = rng.gaussian(cls * 4.0, 0.7);
      x[1] = rng.gaussian(0.0, 1.0);
      x[2] = rng.gaussian(0.0, 2.0);
      d.add(x, cls);
    }
  }
  return d;
}

/// Per-feature max |value| — the quantize() scale reference.
std::vector<double> max_abs_of(const Dataset& d) {
  std::vector<double> out(d.feature_count(), 0.0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto x = d.features(i);
    for (std::size_t f = 0; f < out.size(); ++f)
      out[f] = std::max(out[f], std::abs(x[f]));
  }
  return out;
}

/// eval_block == eval_class for every row of `test`, in the active SIMD
/// mode, for full 16-sample blocks and the ragged tail.
void expect_block_matches_scalar(const compiled::QuantizedModel& qm,
                                 const Dataset& test) {
  constexpr std::size_t kBlk = compiled::QuantizedModel::kQuantBlock;
  const std::size_t d = qm.feature_count();
  ASSERT_EQ(d, test.feature_count());

  std::vector<double> rows(kBlk * d);
  std::vector<std::int16_t> block(qm.block_elems());
  std::vector<std::int16_t> q(d);
  std::vector<std::int32_t> out(kBlk);
  for (std::size_t b = 0; b < test.size(); b += kBlk) {
    const std::size_t n = std::min(kBlk, test.size() - b);
    for (std::size_t i = 0; i < n; ++i) {
      const auto x = test.features(b + i);
      std::copy(x.begin(), x.end(), rows.begin() + i * d);
    }
    qm.quantize_block(rows.data(), n, d, block.data());
    qm.eval_block(block.data(), n, out.data());
    for (std::size_t i = 0; i < n; ++i) {
      const auto x = test.features(b + i);
      qm.quantize_inputs(x, q.data());
      const int scalar = qm.eval_class(q.data());
      EXPECT_EQ(out[i], scalar) << "row " << b + i;
      EXPECT_EQ(qm.predict_raw(x), scalar) << "row " << b + i;
    }
  }
}

/// The full per-model contract: lower at the given spec, then prove the
/// block kernel equals the scalar path in both the native SIMD mode and
/// under forced-scalar dispatch (identical classes, not just close ones).
void expect_quantized_consistent(const Classifier& c, const Dataset& test,
                                 const compiled::QuantSpec& spec) {
  const auto qm = compiled::quantize(c, spec, max_abs_of(test));
  ASSERT_NE(qm, nullptr);
  ASSERT_EQ(qm->class_count(), c.class_count());
  ASSERT_EQ(qm->feature_count(), c.feature_count());
  EXPECT_EQ(qm->format().width(), spec.width);
  EXPECT_EQ(qm->int8_storage(), spec.width <= 8);
  // Width introspection: constants can be wider than the operand format
  // (linear biases are stored pre-shifted by fraction_bits) and ensemble
  // vote accumulators can be narrower than member constants — only
  // positivity is structural.
  EXPECT_GE(qm->constant_bits(), 1);
  EXPECT_GE(qm->accumulator_bits(), 1);

  expect_block_matches_scalar(*qm, test);
  {
    const ScalarModeGuard guard;
    simd::force_scalar(true);
    expect_block_matches_scalar(*qm, test);
  }
}

void expect_quantized_consistent_both_widths(const Classifier& c,
                                             const Dataset& test) {
  expect_quantized_consistent(c, test, {.width = 16, .format = {}});
  expect_quantized_consistent(c, test, {.width = 8, .format = {}});
}

// ------------------------------------------------------ spec parsing ----

TEST(QuantSpecTest, EnvUnsetOrOffIsDisabled) {
  {
    const QuantEnvGuard guard(nullptr);
    EXPECT_FALSE(compiled::quant_spec_from_env().has_value());
  }
  {
    const QuantEnvGuard guard("off");
    EXPECT_FALSE(compiled::quant_spec_from_env().has_value());
  }
  {
    const QuantEnvGuard guard("");
    EXPECT_FALSE(compiled::quant_spec_from_env().has_value());
  }
}

TEST(QuantSpecTest, EnvSelectsAutoFitWidths) {
  {
    const QuantEnvGuard guard("int8");
    const auto spec = compiled::quant_spec_from_env();
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->width, 8);
    EXPECT_FALSE(spec->format.has_value());
  }
  {
    const QuantEnvGuard guard("int16");
    const auto spec = compiled::quant_spec_from_env();
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(spec->width, 16);
    EXPECT_FALSE(spec->format.has_value());
  }
}

TEST(QuantSpecTest, EnvParsesExplicitQFormat) {
  const QuantEnvGuard guard("Q10.6");
  const auto spec = compiled::quant_spec_from_env();
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->width, 16);
  ASSERT_TRUE(spec->format.has_value());
  EXPECT_EQ(spec->format->integer_bits, 10);
  EXPECT_EQ(spec->format->fraction_bits, 6);
}

TEST(QuantSpecTest, EnvRejectsMalformedValues) {
  for (const char* bad : {"int12", "Q20.6", "Q10", "Q1.7", "Q10.0", "eight"}) {
    const QuantEnvGuard guard(bad);
    EXPECT_THROW((void)compiled::quant_spec_from_env(), std::invalid_argument)
        << "SMART2_QUANT=" << bad;
  }
}

// -------------------------------------------------- per-model lowering --

TEST(QuantizedTest, DecisionTreeBlockMatchesScalar) {
  const Dataset train = make_blobs(60, 3.0, 1.0, 11);
  const Dataset test = make_blobs(40, 3.0, 1.2, 12);
  DecisionTree c;
  c.fit(train);
  expect_quantized_consistent_both_widths(c, test);
}

TEST(QuantizedTest, DecisionTreeThreeClassBlockMatchesScalar) {
  const Dataset train = make_three_class(50, 21);
  const Dataset test = make_three_class(30, 22);
  DecisionTree c;
  c.fit(train);
  expect_quantized_consistent_both_widths(c, test);
}

TEST(QuantizedTest, RipperBlockMatchesScalar) {
  const Dataset train = make_blobs(60, 3.0, 1.0, 31);
  const Dataset test = make_blobs(40, 3.0, 1.2, 32);
  Ripper c;
  c.fit(train);
  expect_quantized_consistent_both_widths(c, test);
}

TEST(QuantizedTest, OneRBlockMatchesScalar) {
  const Dataset train = make_blobs(60, 3.0, 1.0, 41);
  const Dataset test = make_blobs(40, 3.0, 1.2, 42);
  OneR c;
  c.fit(train);
  expect_quantized_consistent_both_widths(c, test);
}

TEST(QuantizedTest, LogisticBlockMatchesScalar) {
  const Dataset train = make_blobs(60, 3.0, 1.0, 51);
  const Dataset test = make_blobs(40, 3.0, 1.2, 52);
  LogisticRegression c;
  c.fit(train);
  expect_quantized_consistent_both_widths(c, test);
}

TEST(QuantizedTest, LogisticThreeClassBlockMatchesScalar) {
  const Dataset train = make_three_class(50, 61);
  const Dataset test = make_three_class(30, 62);
  LogisticRegression c;
  c.fit(train);
  expect_quantized_consistent_both_widths(c, test);

  // Small folded weights over in-range inputs: the int32 overflow proof
  // must hold, enabling the pmaddwd kernel the RTL datapath mirrors.
  const auto qm =
      compiled::quantize(c, {.width = 16, .format = {}}, max_abs_of(test));
  const auto* lin = dynamic_cast<const compiled::QuantLinear*>(qm.get());
  ASSERT_NE(lin, nullptr);
  EXPECT_TRUE(lin->int32_exact());
}

TEST(QuantizedTest, MlpBlockMatchesScalar) {
  const Dataset train = make_blobs(60, 3.0, 1.0, 71);
  const Dataset test = make_blobs(40, 3.0, 1.2, 72);
  Mlp::Params params;
  params.epochs = 100;
  Mlp c(params);
  c.fit(train);
  expect_quantized_consistent_both_widths(c, test);
}

TEST(QuantizedTest, AdaBoostOfOneRBlockMatchesScalar) {
  const Dataset train = make_blobs(60, 3.0, 1.0, 81);
  const Dataset test = make_blobs(40, 3.0, 1.2, 82);
  AdaBoost c(std::make_unique<OneR>());
  c.fit(train);
  expect_quantized_consistent_both_widths(c, test);
}

TEST(QuantizedTest, BaggingOfTreesBlockMatchesScalar) {
  const Dataset train = make_blobs(60, 3.0, 1.0, 91);
  const Dataset test = make_blobs(40, 3.0, 1.2, 92);
  Bagging c(std::make_unique<DecisionTree>());
  c.fit(train);
  expect_quantized_consistent_both_widths(c, test);
}

TEST(QuantizedTest, ExplicitNarrowFormatsLowerForRtlAblation) {
  // The RTL width sweep uses formats like Q10.2 (width 12): explicit
  // formats may take any width in [4, 16], not just the storage widths.
  const Dataset train = make_blobs(60, 3.0, 1.0, 101);
  const Dataset test = make_blobs(40, 3.0, 1.2, 102);
  DecisionTree c;
  c.fit(train);
  for (const FixedPointFormat fmt :
       {FixedPointFormat{10, 2}, FixedPointFormat{3, 3},
        FixedPointFormat{2, 2}}) {
    expect_quantized_consistent(c, test,
                                {.width = fmt.width(), .format = fmt});
  }
}

TEST(QuantizedTest, QuantizationIsFaithfulOnSeparableData) {
  // Lossy, but not arbitrarily so: on well-separated blobs the int16
  // auto-fit lowering must agree with the double model almost everywhere.
  const Dataset train = make_blobs(60, 4.0, 0.8, 111);
  const Dataset test = make_blobs(40, 4.0, 0.8, 112);
  DecisionTree c;
  c.fit(train);
  const auto qm =
      compiled::quantize(c, {.width = 16, .format = {}}, max_abs_of(test));
  std::size_t agree = 0;
  for (std::size_t i = 0; i < test.size(); ++i)
    if (qm->predict_raw(test.features(i)) == c.predict(test.features(i)))
      ++agree;
  EXPECT_GE(agree * 10, test.size() * 9);  // >= 90% agreement
}

TEST(QuantizedTest, UnsupportedModelsThrow) {
  const Dataset train = make_blobs(30, 3.0, 1.0, 121);
  const std::vector<double> max_abs(train.feature_count(), 1.0);

  const DecisionTree untrained;
  EXPECT_THROW(
      (void)compiled::quantize(untrained, {.width = 16, .format = {}},
                               max_abs),
      std::invalid_argument);

  NaiveBayes nb;
  nb.fit(train);
  EXPECT_THROW(
      (void)compiled::quantize(nb, {.width = 16, .format = {}}, max_abs),
      std::invalid_argument);

  DecisionTree tree;
  tree.fit(train);
  // Auto-fit widths must be a storage width (8/16)...
  EXPECT_THROW(
      (void)compiled::quantize(tree, {.width = 12, .format = {}}, max_abs),
      std::invalid_argument);
  // ...and explicit formats need a sign+magnitude integer part and at
  // least one fraction bit.
  EXPECT_THROW((void)compiled::quantize(
                   tree, {.width = 8, .format = FixedPointFormat{1, 7}},
                   max_abs),
               std::invalid_argument);
  EXPECT_THROW((void)compiled::quantize(
                   tree, {.width = 8, .format = FixedPointFormat{8, 0}},
                   max_abs),
               std::invalid_argument);
}

// ------------------------------------------------- two-stage pipeline ---

CollectorConfig fast_collector() {
  CollectorConfig cfg;
  cfg.cycles_per_sample = 20'000;
  cfg.samples_per_run = 2;
  cfg.warmup_cycles = 20'000;
  return cfg;
}

/// Shared small profiled dataset (built once; profiling dominates runtime).
const Dataset& small_dataset() {
  static const Dataset d = [] {
    CorpusConfig corpus;
    corpus.scale = 0.04;  // ~145 apps
    return cached_hpc_dataset(corpus, fast_collector(), /*cache_dir=*/"");
  }();
  return d;
}

/// Shared quantized pipeline (J48 stage 2, int16 auto-fit).
const TwoStageHmd& quant_pipeline() {
  static const TwoStageHmd hmd = [] {
    TwoStageConfig cfg;
    cfg.stage2_model = "J48";
    TwoStageHmd h(cfg);
    h.train(small_dataset());
    h.quantize({.width = 16, .format = {}}, max_abs_of(small_dataset()));
    return h;
  }();
  return hmd;
}

void expect_detections_equal(const Detection& a, const Detection& b) {
  EXPECT_EQ(a.is_malware, b.is_malware);
  EXPECT_EQ(a.predicted_class, b.predicted_class);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.stage1_confidence),
            std::bit_cast<std::uint64_t>(b.stage1_confidence));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.stage2_score),
            std::bit_cast<std::uint64_t>(b.stage2_score));
}

TEST(QuantTwoStageTest, DetectionsAreBinaryAndNonTrivial) {
  const TwoStageHmd& hmd = quant_pipeline();
  ASSERT_TRUE(hmd.quantized());
  std::size_t malware = 0;
  for (std::size_t i = 0; i < small_dataset().size(); ++i) {
    const Detection det = hmd.detect(small_dataset().features(i));
    // The integer path has no softmax and no probability mass: confidence
    // is 0 and the stage-2 score is the hardware's binary decision.
    EXPECT_EQ(det.stage1_confidence, 0.0);
    EXPECT_TRUE(det.stage2_score == 0.0 || det.stage2_score == 1.0);
    EXPECT_EQ(det.is_malware, det.stage2_score == 1.0);
    if (det.is_malware) ++malware;
  }
  EXPECT_GT(malware, 0u);  // the loop exercised the quantized stage 2
}

TEST(QuantTwoStageTest, PredictBatchMatchesDetectAcrossThreadsAndSimd) {
  const TwoStageHmd& hmd = quant_pipeline();
  ASSERT_TRUE(hmd.quantized());

  parallel::set_thread_count(1);
  const auto one = hmd.predict_batch(small_dataset());
  parallel::set_thread_count(2);
  const auto two = hmd.predict_batch(small_dataset());
  parallel::set_thread_count(4);
  const auto four = hmd.predict_batch(small_dataset());
  parallel::set_thread_count(0);

  std::vector<Detection> scalar(small_dataset().size());
  {
    const ScalarModeGuard guard;
    simd::force_scalar(true);
    const auto batch = hmd.predict_batch(small_dataset());
    std::copy(batch.begin(), batch.end(), scalar.begin());
  }

  ASSERT_EQ(one.size(), small_dataset().size());
  ASSERT_EQ(two.size(), one.size());
  ASSERT_EQ(four.size(), one.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    expect_detections_equal(one[i], two[i]);
    expect_detections_equal(one[i], four[i]);
    expect_detections_equal(one[i], scalar[i]);
    // The 16-sample epoch kernel must reproduce the per-sample path.
    expect_detections_equal(one[i], hmd.detect(small_dataset().features(i)));
  }
}

TEST(QuantTwoStageTest, ScoreEpochQuantAgreesWithDetect) {
  const TwoStageHmd& hmd = quant_pipeline();
  const auto& common_plan = hmd.plan().common;
  const std::size_t nc = common_plan.size();
  const std::size_t n = small_dataset().size();

  std::vector<double> common(n * nc);
  for (std::size_t i = 0; i < n; ++i) {
    const auto x = small_dataset().features(i);
    for (std::size_t j = 0; j < nc; ++j) common[i * nc + j] = x[common_plan[j]];
  }
  std::vector<double> scores(n);
  std::vector<std::uint8_t> suspected(n);
  hmd.score_epoch_quant(common.data(), n, nc, scores.data(), suspected.data());

  for (std::size_t i = 0; i < n; ++i) {
    const Detection det = hmd.detect(small_dataset().features(i));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(scores[i]),
              std::bit_cast<std::uint64_t>(det.stage2_score))
        << "row " << i;
  }
}

TEST(QuantTwoStageTest, ClearQuantizedRestoresDoublePath) {
  TwoStageConfig cfg;
  cfg.stage2_model = "OneR";
  TwoStageHmd hmd(cfg);
  hmd.train(small_dataset());

  const auto baseline = hmd.predict_batch(small_dataset());
  hmd.quantize({.width = 8, .format = {}}, max_abs_of(small_dataset()));
  ASSERT_TRUE(hmd.quantized());
  (void)hmd.quantized_stage1();  // must not throw while quantized
  hmd.clear_quantized();
  EXPECT_FALSE(hmd.quantized());
  EXPECT_THROW((void)hmd.quantized_stage1(), std::logic_error);

  const auto restored = hmd.predict_batch(small_dataset());
  ASSERT_EQ(restored.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i)
    expect_detections_equal(baseline[i], restored[i]);
}

TEST(QuantTwoStageTest, TrainAutoQuantizesFromEnv) {
  const QuantEnvGuard guard("int8");
  TwoStageConfig cfg;
  cfg.stage2_model = "OneR";
  TwoStageHmd hmd(cfg);
  hmd.train(small_dataset());
  ASSERT_TRUE(hmd.quantized());
  EXPECT_TRUE(hmd.quantized_stage1().int8_storage());
  EXPECT_EQ(hmd.quantized_stage1().format().width(), 8);
}

}  // namespace
}  // namespace smart2

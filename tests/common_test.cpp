// Tests for src/common: RNG, matrix, statistics, eigensolver, CSV, tables.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <set>

#include "common/csv.hpp"
#include "common/eigen.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace smart2 {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(9);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIndexCoversRangeUniformly) {
  Rng rng(10);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 7 * 0.1);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(12);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GaussianShiftScale) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, LognormalIsPositive) {
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(15);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GeometricMeanIsApproximatelyRequested) {
  Rng rng(16);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(rng.geometric(8.0));
  EXPECT_NEAR(sum / n, 8.0, 0.3);
}

TEST(RngTest, GeometricNeverBelowOne) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.geometric(0.2), 1u);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(18);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(RngTest, WeightedIndexAllZeroWeights) {
  Rng rng(19);
  const std::vector<double> w = {0.0, 0.0, 0.0};
  EXPECT_EQ(rng.weighted_index(w), 2u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(20);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng child = a.fork();
  // The fork must differ from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == child.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

// ------------------------------------------------------------- Matrix ----

TEST(MatrixTest, InitializerListAndAccess) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(MatrixTest, AtBoundsChecked) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
  EXPECT_THROW(m.at(0, 2), std::out_of_range);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(MatrixTest, Transpose) {
  Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, Multiply) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  Matrix b = {{5.0, 6.0}, {7.0, 8.0}};
  Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), std::invalid_argument);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const std::vector<double> v = {1.0, 1.0};
  const auto r = a.multiply(v);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 7.0);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a = {{1.0, 2.0}};
  Matrix b = {{3.0, 5.0}};
  EXPECT_DOUBLE_EQ((a + b)(0, 1), 7.0);
  EXPECT_DOUBLE_EQ((b - a)(0, 0), 2.0);
  EXPECT_DOUBLE_EQ((a * 4.0)(0, 1), 8.0);
}

TEST(MatrixTest, Identity) {
  Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
}

TEST(MatrixTest, CovarianceOfKnownData) {
  // Two perfectly correlated columns.
  Matrix samples = {{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  Matrix cov = Matrix::covariance(samples);
  EXPECT_NEAR(cov(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(cov(1, 1), 4.0, 1e-12);
  EXPECT_NEAR(cov(0, 1), 2.0, 1e-12);
  EXPECT_NEAR(cov(1, 0), 2.0, 1e-12);
}

TEST(MatrixTest, CovarianceNeedsTwoRows) {
  Matrix one(1, 3);
  EXPECT_THROW(Matrix::covariance(one), std::invalid_argument);
}

// -------------------------------------------------------------- stats ----

TEST(StatsTest, MeanAndVariance) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(stats::mean(v), 5.0);
  EXPECT_NEAR(stats::variance(v), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats::stddev(v), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, EmptyInputsAreZero) {
  const std::vector<double> v;
  EXPECT_DOUBLE_EQ(stats::mean(v), 0.0);
  EXPECT_DOUBLE_EQ(stats::variance(v), 0.0);
  EXPECT_DOUBLE_EQ(stats::min(v), 0.0);
  EXPECT_DOUBLE_EQ(stats::max(v), 0.0);
}

TEST(StatsTest, PearsonPerfectAndInverse) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  const std::vector<double> z = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(stats::pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(stats::pearson(x, z), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantSideIsZero) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::pearson(x, y), 0.0);
}

TEST(StatsTest, PearsonSizeMismatchThrows) {
  const std::vector<double> x = {1.0};
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_THROW(stats::pearson(x, y), std::invalid_argument);
}

TEST(StatsTest, WeightedMean) {
  const std::vector<double> v = {1.0, 3.0};
  const std::vector<double> w = {3.0, 1.0};
  EXPECT_DOUBLE_EQ(stats::weighted_mean(v, w), 1.5);
}

TEST(StatsTest, QuantileInterpolates) {
  const std::vector<double> v = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(stats::quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(stats::quantile(v, 0.5), 2.5);
}

TEST(StatsTest, EntropyBits) {
  const std::vector<double> uniform = {1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(stats::entropy_bits(uniform), 2.0, 1e-12);
  const std::vector<double> pure = {5.0, 0.0};
  EXPECT_DOUBLE_EQ(stats::entropy_bits(pure), 0.0);
}

TEST(StatsTest, ArgsortStableAscending) {
  const std::vector<double> v = {3.0, 1.0, 2.0, 1.0};
  const auto idx = stats::argsort(v);
  EXPECT_EQ(idx, (std::vector<std::size_t>{1, 3, 2, 0}));
}

// -------------------------------------------------------------- eigen ----

TEST(EigenTest, IdentityMatrix) {
  const auto result = eigen_symmetric(Matrix::identity(4));
  for (double v : result.values) EXPECT_NEAR(v, 1.0, 1e-10);
}

TEST(EigenTest, Known2x2) {
  // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
  Matrix m = {{2.0, 1.0}, {1.0, 2.0}};
  const auto result = eigen_symmetric(m);
  EXPECT_NEAR(result.values[0], 3.0, 1e-10);
  EXPECT_NEAR(result.values[1], 1.0, 1e-10);
}

TEST(EigenTest, ValuesSortedDescending) {
  Matrix m = {{1.0, 0.0, 0.0}, {0.0, 5.0, 0.0}, {0.0, 0.0, 3.0}};
  const auto result = eigen_symmetric(m);
  EXPECT_NEAR(result.values[0], 5.0, 1e-10);
  EXPECT_NEAR(result.values[1], 3.0, 1e-10);
  EXPECT_NEAR(result.values[2], 1.0, 1e-10);
}

TEST(EigenTest, VectorsAreOrthonormal) {
  Matrix m = {{4.0, 1.0, 0.5}, {1.0, 3.0, 0.2}, {0.5, 0.2, 2.0}};
  const auto result = eigen_symmetric(m);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double dot = 0.0;
      for (std::size_t r = 0; r < 3; ++r)
        dot += result.vectors(r, i) * result.vectors(r, j);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-8);
    }
  }
}

TEST(EigenTest, ReconstructsMatrix) {
  Matrix m = {{4.0, 1.0}, {1.0, 3.0}};
  const auto result = eigen_symmetric(m);
  // A = V * diag(lambda) * V^T
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 2; ++c) {
      double acc = 0.0;
      for (std::size_t k = 0; k < 2; ++k)
        acc += result.vectors(r, k) * result.values[k] * result.vectors(c, k);
      EXPECT_NEAR(acc, m(r, c), 1e-8);
    }
  }
}

TEST(EigenTest, NonSquareThrows) {
  Matrix m(2, 3);
  EXPECT_THROW(eigen_symmetric(m), std::invalid_argument);
}

// ---------------------------------------------------------------- csv ----

TEST(CsvTest, ParseSimpleLine) {
  const auto row = csv::parse_line("a,b,c");
  EXPECT_EQ(row, (csv::Row{"a", "b", "c"}));
}

TEST(CsvTest, ParseQuotedFieldWithComma) {
  const auto row = csv::parse_line("a,\"b,c\",d");
  EXPECT_EQ(row, (csv::Row{"a", "b,c", "d"}));
}

TEST(CsvTest, ParseDoubledQuotes) {
  const auto row = csv::parse_line("\"he said \"\"hi\"\"\"");
  EXPECT_EQ(row[0], "he said \"hi\"");
}

TEST(CsvTest, ParseToleratesCrLf) {
  const auto row = csv::parse_line("a,b\r");
  EXPECT_EQ(row, (csv::Row{"a", "b"}));
}

TEST(CsvTest, FormatEscapesWhenNeeded) {
  EXPECT_EQ(csv::format_line({"a", "b,c"}), "a,\"b,c\"");
  EXPECT_EQ(csv::format_line({"x\"y"}), "\"x\"\"y\"");
}

TEST(CsvTest, RoundTripThroughFile) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "smart2_csv_test.csv")
          .string();
  const std::vector<csv::Row> rows = {
      {"name", "value"}, {"alpha", "1,5"}, {"beta", "quote\"d"}};
  csv::write_file(path, rows);
  const auto read = csv::read_file(path);
  EXPECT_EQ(read, rows);
  std::filesystem::remove(path);
}

TEST(CsvTest, MissingFileThrows) {
  EXPECT_THROW(csv::read_file("/nonexistent/really/not.csv"),
               std::runtime_error);
}

// -------------------------------------------------------------- table ----

TEST(TableTest, RendersAlignedColumns) {
  TableWriter t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name   | v |"), std::string::npos);
  EXPECT_NE(out.find("| longer | 2 |"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  TableWriter t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NO_THROW(t.render());
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(TableWriter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TableWriter::num(2.0, 0), "2");
}

}  // namespace
}  // namespace smart2

// Equivalence tests for smart2::compiled: the lowered inference path must be
// bit-identical to the interpreted Classifier::predict_proba for every
// lowerable model, through serialization round trips, and through the
// two-stage pipeline at any thread count.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <sstream>
#include <vector>

#include "common/parallel.hpp"
#include "core/two_stage.hpp"
#include "hpc/dataset_cache.hpp"
#include "ml/adaboost.hpp"
#include "ml/bagging.hpp"
#include "ml/compiled.hpp"
#include "ml/decision_tree.hpp"
#include "ml/logistic.hpp"
#include "ml/mlp.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/onerule.hpp"
#include "ml/ripper.hpp"
#include "ml/serialize.hpp"
#include "workload/appmodels.hpp"

namespace smart2 {
namespace {

/// Two-class Gaussian blobs, linearly separable up to `noise`.
Dataset make_blobs(std::size_t n_per_class, double separation, double noise,
                   std::uint64_t seed, std::size_t dims = 5) {
  std::vector<std::string> names;
  for (std::size_t f = 0; f < dims; ++f)
    names.push_back("f" + std::to_string(f));
  Dataset d(std::move(names), {"neg", "pos"});
  Rng rng(seed);
  std::vector<double> x(dims);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (int cls = 0; cls < 2; ++cls) {
      const double center = cls == 0 ? 0.0 : separation;
      for (std::size_t f = 0; f < dims; ++f)
        x[f] = rng.gaussian(f == 0 ? center : 0.0, f == 0 ? noise : 1.0);
      d.add(x, cls);
    }
  }
  return d;
}

/// A 3-class dataset separable along feature 0 (exercises k > 2 lowering).
Dataset make_three_class(std::size_t n_per_class, std::uint64_t seed) {
  Dataset d({"f0", "f1", "f2"}, {"a", "b", "c"});
  Rng rng(seed);
  std::vector<double> x(3);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (int cls = 0; cls < 3; ++cls) {
      x[0] = rng.gaussian(cls * 4.0, 0.7);
      x[1] = rng.gaussian(0.0, 1.0);
      x[2] = rng.gaussian(0.0, 2.0);
      d.add(x, cls);
    }
  }
  return d;
}

void expect_bits_equal(std::span<const double> a, std::span<const double> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "element " << i << ": " << a[i] << " vs " << b[i];
}

/// The core contract: the compiled lowering of `c` produces bitwise the same
/// probability vector and the same argmax as the interpreted model on every
/// row of `test`.
void expect_compiled_matches(const Classifier& c, const Dataset& test) {
  const auto lowered = compiled::compile(c);
  ASSERT_NE(lowered, nullptr);
  ASSERT_EQ(lowered->class_count(), c.class_count());
  ASSERT_EQ(lowered->feature_count(), c.feature_count());

  std::vector<double> interp(c.class_count());
  std::vector<double> fast(c.class_count());
  for (std::size_t i = 0; i < test.size(); ++i) {
    c.predict_proba_into(test.features(i), interp);
    lowered->predict_proba_into(test.features(i), fast);
    expect_bits_equal(interp, fast);
    EXPECT_EQ(lowered->predict(test.features(i)), c.predict(test.features(i)));
  }
}

/// Serialize -> deserialize -> compile must match the original interpreted
/// model too (save/load is bit-exact, so the chain stays bit-identical).
void expect_roundtrip_matches(const Classifier& c, const Dataset& test) {
  std::stringstream stream;
  serialize_classifier(c, stream);
  const auto restored = deserialize_classifier(stream);
  ASSERT_NE(restored, nullptr);
  expect_compiled_matches(*restored, test);
}

// --------------------------------------------------- per-model lowering --

TEST(CompiledTest, DecisionTreeBitIdentical) {
  const Dataset train = make_blobs(60, 3.0, 1.0, 11);
  const Dataset test = make_blobs(40, 3.0, 1.2, 12);
  DecisionTree c;
  c.fit(train);
  expect_compiled_matches(c, test);
  expect_roundtrip_matches(c, test);
}

TEST(CompiledTest, DecisionTreeThreeClassBitIdentical) {
  const Dataset train = make_three_class(50, 21);
  const Dataset test = make_three_class(30, 22);
  DecisionTree c;
  c.fit(train);
  expect_compiled_matches(c, test);
}

TEST(CompiledTest, RipperBitIdentical) {
  const Dataset train = make_blobs(60, 3.0, 1.0, 31);
  const Dataset test = make_blobs(40, 3.0, 1.2, 32);
  Ripper c;
  c.fit(train);
  expect_compiled_matches(c, test);
  expect_roundtrip_matches(c, test);
}

TEST(CompiledTest, OneRBitIdentical) {
  const Dataset train = make_blobs(60, 3.0, 1.0, 41);
  const Dataset test = make_blobs(40, 3.0, 1.2, 42);
  OneR c;
  c.fit(train);
  expect_compiled_matches(c, test);
  expect_roundtrip_matches(c, test);
}

TEST(CompiledTest, NaiveBayesBitIdentical) {
  const Dataset train = make_three_class(50, 51);
  const Dataset test = make_three_class(30, 52);
  NaiveBayes c;
  c.fit(train);
  expect_compiled_matches(c, test);
  expect_roundtrip_matches(c, test);
}

TEST(CompiledTest, LogisticRegressionBitIdentical) {
  const Dataset train = make_three_class(50, 61);
  const Dataset test = make_three_class(30, 62);
  LogisticRegression c;
  c.fit(train);
  expect_compiled_matches(c, test);
  expect_roundtrip_matches(c, test);
}

TEST(CompiledTest, MlpBitIdentical) {
  // 5 features exercises both the 4-wide gemv row tile and its tail.
  const Dataset train = make_blobs(60, 3.0, 1.0, 71);
  const Dataset test = make_blobs(40, 3.0, 1.2, 72);
  Mlp::Params params;
  params.epochs = 30;
  Mlp c(params);
  c.fit(train);
  expect_compiled_matches(c, test);
  expect_roundtrip_matches(c, test);
}

TEST(CompiledTest, AdaBoostOfOneRBitIdentical) {
  const Dataset train = make_blobs(60, 3.0, 1.0, 81);
  const Dataset test = make_blobs(40, 3.0, 1.2, 82);
  AdaBoost c(std::make_unique<OneR>());
  c.fit(train);
  expect_compiled_matches(c, test);
  expect_roundtrip_matches(c, test);
}

TEST(CompiledTest, BaggingOfTreesBitIdentical) {
  const Dataset train = make_blobs(60, 3.0, 1.0, 91);
  const Dataset test = make_blobs(40, 3.0, 1.2, 92);
  Bagging c(std::make_unique<DecisionTree>());
  c.fit(train);
  expect_compiled_matches(c, test);
  expect_roundtrip_matches(c, test);
}

TEST(CompiledTest, UntrainedModelThrows) {
  const DecisionTree c;
  EXPECT_THROW((void)compiled::compile(c), std::invalid_argument);
}

// --------------------------------------------------- two-stage pipeline --

CollectorConfig fast_collector() {
  CollectorConfig cfg;
  cfg.cycles_per_sample = 20'000;
  cfg.samples_per_run = 2;
  cfg.warmup_cycles = 20'000;
  return cfg;
}

/// Shared small profiled dataset (built once; profiling dominates runtime).
const Dataset& small_dataset() {
  static const Dataset d = [] {
    CorpusConfig corpus;
    corpus.scale = 0.04;  // ~145 apps
    return cached_hpc_dataset(corpus, fast_collector(), /*cache_dir=*/"");
  }();
  return d;
}

void expect_detections_equal(const Detection& a, const Detection& b) {
  EXPECT_EQ(a.is_malware, b.is_malware);
  EXPECT_EQ(a.predicted_class, b.predicted_class);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.stage1_confidence),
            std::bit_cast<std::uint64_t>(b.stage1_confidence));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.stage2_score),
            std::bit_cast<std::uint64_t>(b.stage2_score));
}

TEST(CompiledTwoStageTest, DetectMatchesInterpretedBitwise) {
  TwoStageConfig cfg;
  cfg.stage2_model = "J48";
  TwoStageHmd hmd(cfg);
  hmd.train(small_dataset());
  ASSERT_TRUE(hmd.compiled());

  for (std::size_t i = 0; i < small_dataset().size(); ++i) {
    const auto fast = hmd.detect(small_dataset().features(i));
    const auto interp = hmd.detect_interpreted(small_dataset().features(i));
    expect_detections_equal(fast, interp);
  }
}

TEST(CompiledTwoStageTest, AutoSelectedStage2MatchesInterpreted) {
  TwoStageConfig cfg;  // empty stage2_model: per-class winner by F x AUC
  cfg.boost = true;
  cfg.boost_rounds = 3;
  TwoStageHmd hmd(cfg);
  hmd.train(small_dataset());
  ASSERT_TRUE(hmd.compiled());

  for (std::size_t i = 0; i < small_dataset().size(); ++i)
    expect_detections_equal(hmd.detect(small_dataset().features(i)),
                            hmd.detect_interpreted(small_dataset().features(i)));
}

TEST(CompiledTwoStageTest, PredictBatchBitIdenticalAcrossThreadCounts) {
  TwoStageConfig cfg;
  cfg.stage2_model = "OneR";
  TwoStageHmd hmd(cfg);
  hmd.train(small_dataset());

  parallel::set_thread_count(1);
  const auto one = hmd.predict_batch(small_dataset());
  parallel::set_thread_count(2);
  const auto two = hmd.predict_batch(small_dataset());
  parallel::set_thread_count(4);
  const auto four = hmd.predict_batch(small_dataset());
  parallel::set_thread_count(0);

  ASSERT_EQ(one.size(), small_dataset().size());
  ASSERT_EQ(two.size(), one.size());
  ASSERT_EQ(four.size(), one.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    expect_detections_equal(one[i], two[i]);
    expect_detections_equal(one[i], four[i]);
    // Worker-lane arenas must reproduce the single-sample path exactly.
    expect_detections_equal(one[i], hmd.detect(small_dataset().features(i)));
  }
}

TEST(CompiledTwoStageTest, SaveLoadRecompilesIdentically) {
  TwoStageConfig cfg;
  cfg.stage2_model = "JRip";
  TwoStageHmd hmd(cfg);
  hmd.train(small_dataset());

  std::stringstream stream;
  hmd.save(stream);
  const TwoStageHmd restored = TwoStageHmd::load(stream);
  ASSERT_TRUE(restored.compiled());

  for (std::size_t i = 0; i < small_dataset().size(); ++i)
    expect_detections_equal(hmd.detect(small_dataset().features(i)),
                            restored.detect(small_dataset().features(i)));
}

}  // namespace
}  // namespace smart2

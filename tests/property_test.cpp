// Property-style tests: golden reference models and metric invariants
// exercised over randomized inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <map>
#include <set>

#include "ml/metrics.hpp"
#include "ml/onerule.hpp"
#include "ml/random_forest.hpp"
#include "ml/serialize.hpp"
#include "hw/verilog_gen.hpp"
#include "ml/decision_tree.hpp"
#include "uarch/cache.hpp"
#include "uarch/tlb.hpp"
#include "uarch/core.hpp"

namespace smart2 {
namespace {

// ------------------------------------------------ cache golden model -----

/// Brute-force per-set LRU cache, the executable specification the fast
/// Cache implementation must match access-for-access.
class ReferenceCache {
 public:
  explicit ReferenceCache(const CacheConfig& cfg) : cfg_(cfg) {
    sets_ = cfg.size_bytes / cfg.line_bytes / cfg.associativity;
  }

  bool access(std::uint64_t address, bool is_store) {
    const std::uint64_t line = address / cfg_.line_bytes;
    const std::uint64_t set = line % sets_;
    auto& lru = sets_state_[set];  // front = most recent
    const auto it = std::find_if(lru.begin(), lru.end(),
                                 [&](const Line& l) { return l.tag == line; });
    if (it != lru.end()) {
      it->dirty = it->dirty || is_store;
      lru.splice(lru.begin(), lru, it);
      return true;
    }
    lru.push_front({line, is_store});
    if (lru.size() > cfg_.associativity) lru.pop_back();
    return false;
  }

 private:
  struct Line {
    std::uint64_t tag;
    bool dirty;
  };
  CacheConfig cfg_;
  std::uint64_t sets_;
  std::map<std::uint64_t, std::list<Line>> sets_state_;
};

class CacheGoldenTest : public ::testing::TestWithParam<CacheConfig> {};

TEST_P(CacheGoldenTest, MatchesReferenceModelOnRandomTraffic) {
  Cache fast(GetParam());
  ReferenceCache golden(GetParam());
  Rng rng(0xCAFE);
  for (int i = 0; i < 50000; ++i) {
    // Mix of hot (reused) and cold (streaming) addresses.
    const std::uint64_t addr =
        rng.bernoulli(0.7) ? rng.uniform_index(1 << 14) * 8
                           : rng.uniform_index(1 << 22) * 8;
    const bool store = rng.bernoulli(0.3);
    EXPECT_EQ(fast.access(addr, store).hit, golden.access(addr, store))
        << "divergence at access " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CacheGoldenTest,
    ::testing::Values(CacheConfig{1024, 1, 64}, CacheConfig{4096, 2, 64},
                      CacheConfig{8192, 8, 64}, CacheConfig{16384, 4, 32}));

// -------------------------------------------------- TLB golden model -----

/// Fully-tracked per-set LRU TLB reference (ignores the fast path's LRU
/// shortcut: a repeat of the very last page skips the LRU update, so the
/// reference replays that rule too).
class ReferenceTlb {
 public:
  explicit ReferenceTlb(const TlbConfig& cfg) : cfg_(cfg) {
    sets_ = cfg.entries / cfg.ways;
  }

  bool access(std::uint64_t address) {
    const std::uint64_t page = address / cfg_.page_bytes;
    if (page == last_page_) return true;
    last_page_ = page;
    const std::uint64_t set = page % sets_;
    auto& lru = state_[set];
    const auto it = std::find(lru.begin(), lru.end(), page);
    if (it != lru.end()) {
      lru.splice(lru.begin(), lru, it);
      return true;
    }
    lru.push_front(page);
    if (lru.size() > cfg_.ways) lru.pop_back();
    return false;
  }

 private:
  TlbConfig cfg_;
  std::uint64_t sets_;
  std::uint64_t last_page_ = ~0ULL;
  std::map<std::uint64_t, std::list<std::uint64_t>> state_;
};

class TlbGoldenTest : public ::testing::TestWithParam<TlbConfig> {};

TEST_P(TlbGoldenTest, MatchesReferenceModelOnRandomTraffic) {
  Tlb fast(GetParam());
  ReferenceTlb golden(GetParam());
  Rng rng(0xBEEF);
  for (int i = 0; i < 30000; ++i) {
    const std::uint64_t addr =
        rng.bernoulli(0.6) ? rng.uniform_index(64) * 4096 + 7
                           : rng.uniform_index(1 << 16) * 4096;
    EXPECT_EQ(fast.access(addr), golden.access(addr))
        << "divergence at access " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TlbGoldenTest,
                         ::testing::Values(TlbConfig{8, 4, 4096},
                                           TlbConfig{32, 4, 4096},
                                           TlbConfig{64, 8, 4096}));

// --------------------------------------------------- metric invariants ---

class AucInvarianceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AucInvarianceTest, MonotoneTransformPreservesAuc) {
  Rng rng(GetParam());
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 200; ++i) {
    const int y = rng.bernoulli(0.4) ? 1 : 0;
    labels.push_back(y);
    scores.push_back(rng.gaussian(y * 1.5, 1.0));
  }
  const double base = roc_auc(labels, scores);

  auto transformed = scores;
  for (double& s : transformed) s = std::exp(0.5 * s) + 3.0;  // monotone
  EXPECT_NEAR(roc_auc(labels, transformed), base, 1e-12);
}

TEST_P(AucInvarianceTest, LabelFlipMirrorsAuc) {
  Rng rng(GetParam() ^ 0xF00);
  std::vector<int> labels;
  std::vector<double> scores;
  for (int i = 0; i < 150; ++i) {
    labels.push_back(rng.bernoulli(0.5) ? 1 : 0);
    scores.push_back(rng.uniform());
  }
  auto flipped = labels;
  for (int& y : flipped) y = 1 - y;
  EXPECT_NEAR(roc_auc(labels, scores) + roc_auc(flipped, scores), 1.0,
              1e-12);
}

TEST_P(AucInvarianceTest, FMeasureBoundedByPrecisionRecall) {
  Rng rng(GetParam() ^ 0xBA2);
  ConfusionMatrix cm(2);
  for (int i = 0; i < 300; ++i)
    cm.add(rng.bernoulli(0.5) ? 1 : 0, rng.bernoulli(0.5) ? 1 : 0);
  const double p = cm.precision(1);
  const double r = cm.recall(1);
  const double f = cm.f_measure(1);
  EXPECT_LE(f, std::max(p, r) + 1e-12);
  EXPECT_GE(f, 0.0);
  EXPECT_LE(f, (p + r) / 2.0 + 1e-12);  // harmonic <= arithmetic mean
}

INSTANTIATE_TEST_SUITE_P(Seeds, AucInvarianceTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ------------------------------------------------------- random forest ---

Dataset noisy_blobs(std::size_t n_per_class, std::uint64_t seed) {
  Dataset d({"a", "b", "c", "d"}, {"neg", "pos"});
  Rng rng(seed);
  std::vector<double> x(4);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (int cls = 0; cls < 2; ++cls) {
      x[0] = rng.gaussian(cls * 1.6, 1.0);
      x[1] = rng.gaussian(cls * 1.0, 1.2);
      x[2] = rng.gaussian(0.0, 1.0);
      x[3] = rng.gaussian(cls * 0.5, 1.5);
      d.add(x, cls);
    }
  }
  return d;
}

TEST(RandomForestTest, BeatsASingleUnprunedTree) {
  const Dataset train = noisy_blobs(200, 0x41);
  const Dataset test = noisy_blobs(120, 0x42);

  DecisionTree::Params unstable;
  unstable.prune = false;
  unstable.min_leaf_weight = 1.0;
  DecisionTree single(unstable);
  single.fit(train);

  auto forest = make_random_forest();
  forest->fit(train);

  auto acc = [&](const Classifier& c) {
    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i)
      if (c.predict(test.features(i)) == test.label(i)) ++correct;
    return static_cast<double>(correct) / static_cast<double>(test.size());
  };
  EXPECT_GE(acc(*forest) + 0.02, acc(single));
  EXPECT_GT(acc(*forest), 0.7);
}

TEST(RandomForestTest, SubspaceTreesUseDifferentFeatures) {
  const Dataset train = noisy_blobs(150, 0x43);
  RandomForestParams params;
  params.trees = 12;
  params.split_feature_sample = 1;  // extreme: one feature per split
  auto forest = make_random_forest(params);
  forest->fit(train);

  // Root features across trees should not all be identical.
  const auto* bagging = dynamic_cast<const Bagging*>(forest.get());
  ASSERT_NE(bagging, nullptr);
  std::set<std::size_t> root_features;
  for (std::size_t t = 0; t < bagging->bag_count(); ++t) {
    const auto* tree =
        dynamic_cast<const DecisionTree*>(&bagging->member(t));
    ASSERT_NE(tree, nullptr);
    if (!tree->root()->is_leaf) root_features.insert(tree->root()->feature);
  }
  EXPECT_GT(root_features.size(), 1u);
}

TEST(RandomForestTest, SerializesLikeAnyEnsemble) {
  const Dataset train = noisy_blobs(80, 0x44);
  auto forest = make_random_forest();
  forest->fit(train);
  const auto restored = deserialize_classifier(serialize_classifier(*forest));
  for (std::size_t i = 0; i < train.size(); ++i)
    EXPECT_EQ(restored->predict(train.features(i)),
              forest->predict(train.features(i)));
}

// ------------------------------------------------------------ L2 cache ---

TEST(L2CacheTest, FiltersLlcTraffic) {
  MicroOp ld;
  ld.kind = MicroOp::Kind::kLoad;
  ld.iaddr = 0x400000;

  auto llc_refs_with = [&](bool l2) {
    CoreConfig cfg;
    cfg.has_l2 = l2;
    CoreModel core(cfg);
    // Working set bigger than L1 (8 KB) but inside L2 (32 KB): loop twice.
    for (int pass = 0; pass < 4; ++pass)
      for (int line = 0; line < 256; ++line) {  // 16 KB
        ld.daddr = 0x10000000 + static_cast<std::uint64_t>(line) * 64;
        core.execute(ld);
      }
    return core.counters()[event_index(Event::kCacheReferences)];
  };
  // With the L2 absorbing the 16 KB set, the LLC sees far fewer references.
  EXPECT_LT(llc_refs_with(true), llc_refs_with(false) / 2);
}

TEST(L2CacheTest, DirtyL2EvictionReachesMemoryAsNodeStore) {
  CoreConfig cfg;
  cfg.has_l2 = true;
  CoreModel core(cfg);
  MicroOp st;
  st.kind = MicroOp::Kind::kStore;
  st.iaddr = 0x400000;
  // Write far more lines than L2 (32 KB) or LLC (256 KB) hold: dirty lines
  // cascade out of both levels and must surface as node-store traffic.
  for (int line = 0; line < 16384; ++line) {  // 1 MB of dirty lines
    st.daddr = 0x10000000 + static_cast<std::uint64_t>(line) * 64;
    core.execute(st);
  }
  EXPECT_GT(core.counters()[event_index(Event::kNodeStores)], 10000u);
}

TEST(L2CacheTest, DisabledByDefaultKeepsCounts) {
  CoreModel a;
  CoreConfig cfg;
  cfg.has_l2 = false;
  CoreModel b(cfg);
  MicroOp ld;
  ld.kind = MicroOp::Kind::kLoad;
  ld.iaddr = 0x400000;
  ld.daddr = 0x20000000;
  a.execute(ld);
  b.execute(ld);
  EXPECT_EQ(a.counters(), b.counters());
}

// ----------------------------------------------------- verilog testbench --

TEST(TestbenchTest, EmitsSelfCheckingVectors) {
  const Dataset d = noisy_blobs(80, 0x51);
  DecisionTree tree;
  tree.fit(d);
  VerilogOptions opt;
  opt.scale_reference = &d;
  const auto module = generate_verilog(tree, "tb_target", opt);
  const std::string tb = generate_testbench(module, tree, d, 8);

  EXPECT_NE(tb.find("module tb_target_tb"), std::string::npos);
  EXPECT_NE(tb.find("tb_target dut"), std::string::npos);
  EXPECT_NE(tb.find("check("), std::string::npos);
  EXPECT_NE(tb.find("$finish"), std::string::npos);
  // One check call per vector.
  std::size_t checks = 0;
  for (std::size_t pos = 0; (pos = tb.find("check(", pos)) != std::string::npos;
       pos += 6)
    ++checks;
  EXPECT_EQ(checks, 8u + 1u);  // 8 calls + the task definition mention
}

TEST(TestbenchTest, BadInputsThrow) {
  const Dataset d = noisy_blobs(30, 0x52);
  DecisionTree tree;
  tree.fit(d);
  VerilogOptions opt;
  opt.scale_reference = &d;
  const auto module = generate_verilog(tree, "t", opt);

  DecisionTree untrained;
  EXPECT_THROW(generate_testbench(module, untrained, d),
               std::invalid_argument);
  Dataset empty({"a", "b", "c", "d"}, {"neg", "pos"});
  EXPECT_THROW(generate_testbench(module, tree, empty),
               std::invalid_argument);
  Dataset wrong({"a"}, {"neg", "pos"});
  wrong.add(std::vector<double>{1.0}, 0);
  EXPECT_THROW(generate_testbench(module, tree, wrong),
               std::invalid_argument);
}

// -------------------------------------------------- serialization fuzz ---

TEST(SerializationFuzzTest, TruncationsThrowInsteadOfCrashing) {
  const Dataset train = noisy_blobs(60, 0x45);
  DecisionTree tree;
  tree.fit(train);
  const std::string text = serialize_classifier(tree);
  Rng rng(0x46);
  for (int i = 0; i < 50; ++i) {
    const std::size_t cut = 1 + rng.uniform_index(text.size() - 1);
    const std::string mangled = text.substr(0, cut);
    try {
      (void)deserialize_classifier(mangled);
      // Some prefixes may still parse to a smaller valid tree only if the
      // stream happens to end on a node boundary; that is acceptable.
    } catch (const std::runtime_error&) {
      // expected for most cuts
    }
  }
  SUCCEED();
}

TEST(SerializationFuzzTest, ByteFlipsThrowOrStayConsistent) {
  const Dataset train = noisy_blobs(40, 0x47);
  OneR oner;
  oner.fit(train);
  const std::string text = serialize_classifier(oner);
  Rng rng(0x48);
  for (int i = 0; i < 50; ++i) {
    std::string mangled = text;
    mangled[rng.uniform_index(mangled.size())] = 'x';
    try {
      const auto model = deserialize_classifier(mangled);
      // If it parsed, it must at least predict without crashing.
      (void)model->predict(train.features(0));
    } catch (const std::exception&) {
      // expected for most flips
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace smart2

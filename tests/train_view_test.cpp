// Tests for the presorted columnar training engine (src/ml/train_view).
//
// The engine's contract is strict: models trained through the presorted
// path must serialize BYTE-IDENTICAL to the legacy per-node-sort path, for
// every learner, any thread count, uniform and non-uniform weights, and
// bootstrap ensembles. These tests fit each model under both engines and
// compare the serialized bodies as strings.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "ml/adaboost.hpp"
#include "ml/bagging.hpp"
#include "ml/decision_tree.hpp"
#include "ml/onerule.hpp"
#include "ml/random_forest.hpp"
#include "ml/ripper.hpp"
#include "ml/serialize.hpp"
#include "ml/train_view.hpp"

namespace smart2 {
namespace {

/// Restores the training engine and pool width on scope exit, so a failing
/// assertion cannot leak a legacy/1-thread configuration into later tests.
class EngineGuard {
 public:
  EngineGuard() : threads_(parallel::thread_count()) {}
  ~EngineGuard() {
    set_train_engine(TrainEngine::kPresorted);
    parallel::set_thread_count(threads_);
  }

 private:
  std::size_t threads_;
};

/// Two-class blobs with heavy value duplication (quantized features), which
/// exercises the tie-handling that presort correctness hinges on.
Dataset make_quantized(std::size_t n, std::uint64_t seed,
                       std::size_t dims = 4) {
  std::vector<std::string> names;
  for (std::size_t f = 0; f < dims; ++f)
    names.push_back("f" + std::to_string(f));
  Dataset d(std::move(names), {"neg", "pos"});
  Rng rng(seed);
  std::vector<double> x(dims);
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % 2);
    for (std::size_t f = 0; f < dims; ++f) {
      const double raw = rng.gaussian(cls == 0 ? 0.0 : 1.5, 1.0);
      // Snap to a coarse grid: many exact duplicates per column.
      x[f] = std::round(raw * 4.0) / 4.0;
    }
    d.add(x, cls);
  }
  return d;
}

/// Pathological columns: one all-equal feature, one two-valued feature.
Dataset make_degenerate(std::size_t n) {
  Dataset d({"const", "binary", "ramp"}, {"a", "b"});
  std::vector<double> x(3);
  for (std::size_t i = 0; i < n; ++i) {
    x[0] = 7.0;
    x[1] = static_cast<double>(i % 2);
    x[2] = static_cast<double>(i / 3);
    d.add(x, static_cast<int>((i / 2) % 2));
  }
  return d;
}

std::vector<double> uniform_weights(std::size_t n) {
  return std::vector<double>(n, 1.0);
}

std::vector<double> ragged_weights(std::size_t n) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i)
    w[i] = 0.25 + static_cast<double>(i % 7) * 0.375;
  return w;
}

using Factory = std::unique_ptr<Classifier> (*)();

std::string fit_serialized(const Factory& make, const Dataset& train,
                           const std::vector<double>& weights,
                           TrainEngine engine, std::size_t threads) {
  set_train_engine(engine);
  parallel::set_thread_count(threads);
  auto model = make();
  model->fit_weighted(train, weights);
  return serialize_classifier(*model);
}

/// The core assertion: legacy@1 thread is the reference; the presorted
/// engine must reproduce it byte for byte at 1, 2, and 4 threads (and
/// legacy itself must be thread-count invariant).
void expect_engines_identical(const Factory& make, const Dataset& train,
                              const std::vector<double>& weights) {
  const EngineGuard guard;
  const std::string reference =
      fit_serialized(make, train, weights, TrainEngine::kLegacy, 1);
  EXPECT_EQ(reference,
            fit_serialized(make, train, weights, TrainEngine::kLegacy, 4));
  for (const std::size_t threads : {1u, 2u, 4u}) {
    EXPECT_EQ(reference, fit_serialized(make, train, weights,
                                        TrainEngine::kPresorted, threads))
        << "presorted engine diverged at " << threads << " threads";
  }
}

// ------------------------------------------------------ view mechanics ---

TEST(TrainViewTest, SortedTablesAreStableAscending) {
  const Dataset d = make_quantized(64, 0xabc1);
  const TrainView view(d);
  ASSERT_EQ(view.entry_count(), d.size());
  for (std::size_t f = 0; f < d.feature_count(); ++f) {
    const auto idx = view.sorted(f);
    for (std::size_t p = 0; p + 1 < idx.size(); ++p) {
      const double a = view.value(f, idx[p]);
      const double b = view.value(f, idx[p + 1]);
      EXPECT_LE(a, b);
      if (a == b) {
        EXPECT_LT(idx[p], idx[p + 1]) << "tie must keep row order";
      }
    }
  }
}

TEST(TrainViewTest, BootstrapMaterializeMatchesLegacyResample) {
  const Dataset d = make_quantized(48, 0xabc2);
  const std::vector<double> w = ragged_weights(d.size());

  Rng legacy_rng(0x5eed);
  const Dataset legacy = d.resample_weighted(w, d.size(), legacy_rng);

  Rng view_rng(0x5eed);
  const auto drawn = TrainView::draw_bootstrap(w, d.size(), view_rng);
  const TrainView base(d);
  const TrainView boot(base, drawn);
  const Dataset materialized = boot.materialize();

  ASSERT_EQ(materialized.size(), legacy.size());
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(materialized.label(i), legacy.label(i));
    const auto a = materialized.features(i);
    const auto b = legacy.features(i);
    for (std::size_t f = 0; f < d.feature_count(); ++f)
      EXPECT_EQ(a[f], b[f]);
  }
}

TEST(TrainViewTest, BootstrapSortedTablesAreValueOrdered) {
  const Dataset d = make_quantized(40, 0xabc3);
  const TrainView base(d);
  Rng rng(0x77);
  const auto drawn =
      TrainView::draw_bootstrap(uniform_weights(d.size()), 55, rng);
  const TrainView boot(base, drawn);
  ASSERT_EQ(boot.entry_count(), 55u);
  for (std::size_t f = 0; f < d.feature_count(); ++f) {
    const auto idx = boot.sorted(f);
    for (std::size_t p = 0; p + 1 < idx.size(); ++p)
      EXPECT_LE(boot.value(f, idx[p]), boot.value(f, idx[p + 1]));
  }
}

TEST(TrainViewTest, EngineSwitchRoundTrips) {
  const EngineGuard guard;
  set_train_engine(TrainEngine::kLegacy);
  EXPECT_FALSE(train_presorted());
  set_train_engine(TrainEngine::kPresorted);
  EXPECT_TRUE(train_presorted());
}

// -------------------------------------------------- engine equivalence ---

TEST(TrainEquivalenceTest, J48UniformWeights) {
  const Dataset d = make_quantized(160, 0xd0);
  expect_engines_identical(
      [] {
        return std::unique_ptr<Classifier>(std::make_unique<DecisionTree>());
      },
      d, uniform_weights(d.size()));
}

TEST(TrainEquivalenceTest, J48NonUniformWeights) {
  const Dataset d = make_quantized(160, 0xd1);
  expect_engines_identical(
      [] {
        return std::unique_ptr<Classifier>(std::make_unique<DecisionTree>());
      },
      d, ragged_weights(d.size()));
}

TEST(TrainEquivalenceTest, J48UnprunedDeepTree) {
  const Dataset d = make_quantized(200, 0xd2);
  expect_engines_identical(
      [] {
        DecisionTree::Params p;
        p.prune = false;
        p.min_leaf_weight = 1.0;
        return std::unique_ptr<Classifier>(
            std::make_unique<DecisionTree>(p));
      },
      d, uniform_weights(d.size()));
}

TEST(TrainEquivalenceTest, J48DegenerateColumns) {
  const Dataset d = make_degenerate(37);
  expect_engines_identical(
      [] {
        return std::unique_ptr<Classifier>(std::make_unique<DecisionTree>());
      },
      d, uniform_weights(d.size()));
}

TEST(TrainEquivalenceTest, J48SingleRow) {
  Dataset d({"f0"}, {"a", "b"});
  d.add(std::vector<double>{1.0}, 0);
  expect_engines_identical(
      [] {
        return std::unique_ptr<Classifier>(std::make_unique<DecisionTree>());
      },
      d, uniform_weights(1));
}

TEST(TrainEquivalenceTest, JRipUniformWeights) {
  const Dataset d = make_quantized(150, 0xd3);
  expect_engines_identical(
      [] { return std::unique_ptr<Classifier>(std::make_unique<Ripper>()); },
      d, uniform_weights(d.size()));
}

TEST(TrainEquivalenceTest, JRipNonUniformWeights) {
  const Dataset d = make_quantized(150, 0xd4);
  expect_engines_identical(
      [] { return std::unique_ptr<Classifier>(std::make_unique<Ripper>()); },
      d, ragged_weights(d.size()));
}

TEST(TrainEquivalenceTest, OneRUniformAndRaggedWeights) {
  const Dataset d = make_quantized(140, 0xd5);
  const Factory make = [] {
    return std::unique_ptr<Classifier>(std::make_unique<OneR>());
  };
  expect_engines_identical(make, d, uniform_weights(d.size()));
  expect_engines_identical(make, d, ragged_weights(d.size()));
}

TEST(TrainEquivalenceTest, OneRDegenerateColumns) {
  const Dataset d = make_degenerate(30);
  expect_engines_identical(
      [] { return std::unique_ptr<Classifier>(std::make_unique<OneR>()); },
      d, uniform_weights(d.size()));
}

TEST(TrainEquivalenceTest, BaggingJ48SharesOnePresort) {
  const Dataset d = make_quantized(120, 0xd6);
  expect_engines_identical(
      [] {
        return std::unique_ptr<Classifier>(std::make_unique<Bagging>(
            std::make_unique<DecisionTree>()));
      },
      d, uniform_weights(d.size()));
}

TEST(TrainEquivalenceTest, BaggingOneR) {
  const Dataset d = make_quantized(110, 0xd7);
  expect_engines_identical(
      [] {
        return std::unique_ptr<Classifier>(
            std::make_unique<Bagging>(std::make_unique<OneR>()));
      },
      d, uniform_weights(d.size()));
}

TEST(TrainEquivalenceTest, BaggingJRipMaterializesPerBag) {
  // JRip has no native fit_view: Bagging must fall back to materialized
  // bootstrap samples and still match the legacy ensemble exactly.
  const Dataset d = make_quantized(90, 0xd8);
  expect_engines_identical(
      [] {
        return std::unique_ptr<Classifier>(
            std::make_unique<Bagging>(std::make_unique<Ripper>()));
      },
      d, uniform_weights(d.size()));
}

TEST(TrainEquivalenceTest, RandomForestSubspaceTrees) {
  const Dataset d = make_quantized(130, 0xd9, 6);
  expect_engines_identical([] { return make_random_forest(); }, d,
                           uniform_weights(d.size()));
}

TEST(TrainEquivalenceTest, AdaBoostJ48EvolvingWeights) {
  // Boost rounds reuse the shared view verbatim while the entry weights
  // evolve: the non-uniform-weight stress case for the presorted scan.
  const Dataset d = make_quantized(140, 0xda);
  expect_engines_identical(
      [] {
        return std::unique_ptr<Classifier>(std::make_unique<AdaBoost>(
            std::make_unique<DecisionTree>()));
      },
      d, uniform_weights(d.size()));
}

TEST(TrainEquivalenceTest, AdaBoostJ48ForcedResampling) {
  const Dataset d = make_quantized(120, 0xdb);
  expect_engines_identical(
      [] {
        AdaBoost::Params p;
        p.force_resampling = true;
        return std::unique_ptr<Classifier>(std::make_unique<AdaBoost>(
            std::make_unique<DecisionTree>(), p));
      },
      d, uniform_weights(d.size()));
}

TEST(TrainEquivalenceTest, AdaBoostJRip) {
  const Dataset d = make_quantized(100, 0xdc);
  expect_engines_identical(
      [] {
        return std::unique_ptr<Classifier>(
            std::make_unique<AdaBoost>(std::make_unique<Ripper>()));
      },
      d, uniform_weights(d.size()));
}

TEST(TrainEquivalenceTest, AdaBoostOneR) {
  const Dataset d = make_quantized(100, 0xdd);
  expect_engines_identical(
      [] {
        return std::unique_ptr<Classifier>(
            std::make_unique<AdaBoost>(std::make_unique<OneR>()));
      },
      d, uniform_weights(d.size()));
}

TEST(TrainEquivalenceTest, AdaBoostJ48CalledWithRaggedOuterWeights) {
  // Outer callers (e.g. a boosted ensemble nested in CV folds) may hand
  // AdaBoost non-uniform weights directly.
  const Dataset d = make_quantized(120, 0xde);
  expect_engines_identical(
      [] {
        return std::unique_ptr<Classifier>(std::make_unique<AdaBoost>(
            std::make_unique<DecisionTree>()));
      },
      d, ragged_weights(d.size()));
}

}  // namespace
}  // namespace smart2

// Tests for the extension features: stratified k-fold cross-validation,
// the next-line hardware prefetcher, and Verilog generation.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <filesystem>

#include "common/stats.hpp"
#include "core/online_detector.hpp"
#include "hpc/dataset_cache.hpp"
#include "hw/verilog_gen.hpp"
#include "ml/adaboost.hpp"
#include "ml/cross_validation.hpp"
#include "ml/decision_tree.hpp"
#include "ml/logistic.hpp"
#include "ml/mlp.hpp"
#include "ml/onerule.hpp"
#include "ml/quantized.hpp"
#include "ml/ripper.hpp"
#include "uarch/core.hpp"
#include "workload/appmodels.hpp"
#include "workload/generator.hpp"

namespace smart2 {
namespace {

Dataset make_blobs(std::size_t n_per_class, std::uint64_t seed,
                   std::size_t dims = 3, std::size_t classes = 2) {
  std::vector<std::string> names;
  for (std::size_t f = 0; f < dims; ++f)
    names.push_back("f" + std::to_string(f));
  std::vector<std::string> class_names;
  for (std::size_t c = 0; c < classes; ++c)
    class_names.push_back("c" + std::to_string(c));
  Dataset d(std::move(names), std::move(class_names));
  Rng rng(seed);
  std::vector<double> x(dims);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (std::size_t cls = 0; cls < classes; ++cls) {
      for (std::size_t f = 0; f < dims; ++f)
        x[f] = rng.gaussian(f == 0 ? static_cast<double>(cls) * 5.0 : 0.0,
                            1.0);
      d.add(x, static_cast<int>(cls));
    }
  }
  return d;
}

// ---------------------------------------------------- cross-validation ---

TEST(CrossValidationTest, FoldsAreStratifiedAndComplete) {
  const Dataset d = make_blobs(50, 0x21);
  Rng rng(1);
  const auto folds = stratified_folds(d, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::size_t total = 0;
  for (const auto& fold : folds) {
    total += fold.size();
    const auto hist = fold.class_histogram();
    EXPECT_EQ(hist[0], hist[1]);  // balanced input stays balanced per fold
  }
  EXPECT_EQ(total, d.size());
}

TEST(CrossValidationTest, InvalidArgumentsThrow) {
  const Dataset d = make_blobs(10, 0x22);
  Rng rng(2);
  EXPECT_THROW(stratified_folds(d, 1, rng), std::invalid_argument);
  EXPECT_THROW(stratified_folds(d, 999, rng), std::invalid_argument);
}

TEST(CrossValidationTest, BinaryCvReportsPlausibleMetrics) {
  const Dataset d = make_blobs(80, 0x23);
  Rng rng(3);
  DecisionTree proto;
  const auto result = cross_validate_binary(proto, d, 5, rng);
  ASSERT_EQ(result.folds.size(), 5u);
  EXPECT_GT(result.mean.f_measure, 0.85);
  EXPECT_GT(result.mean.auc, 0.85);
  EXPECT_GE(result.f_stddev, 0.0);
  EXPECT_LT(result.f_stddev, 0.2);
}

TEST(CrossValidationTest, MeanAucIsTheFoldAverage) {
  // Regression: BinaryEval default-initializes auc to 0.5; the mean must
  // not inherit that offset.
  const Dataset d = make_blobs(60, 0x2A);
  Rng rng(6);
  OneR proto;
  const auto result = cross_validate_binary(proto, d, 4, rng);
  double expected = 0.0;
  for (const auto& fold : result.folds) expected += fold.auc;
  expected /= static_cast<double>(result.folds.size());
  EXPECT_NEAR(result.mean.auc, expected, 1e-12);
  EXPECT_LE(result.mean.auc, 1.0);
}

TEST(CrossValidationTest, BinaryCvRejectsMulticlass) {
  const Dataset d = make_blobs(30, 0x24, 2, 3);
  Rng rng(4);
  OneR proto;
  EXPECT_THROW(cross_validate_binary(proto, d, 3, rng),
               std::invalid_argument);
}

TEST(CrossValidationTest, MulticlassAccuracy) {
  const Dataset d = make_blobs(60, 0x25, 2, 3);
  Rng rng(5);
  LogisticRegression proto;
  EXPECT_GT(cross_validate_accuracy(proto, d, 4, rng), 0.85);
}

// ----------------------------------------------------------- prefetcher --

TEST(PrefetcherTest, NextLinePrefetchGeneratesPrefetchEvents) {
  CoreConfig cfg;
  cfg.next_line_prefetcher = true;
  CoreModel core(cfg);
  MicroOp ld;
  ld.kind = MicroOp::Kind::kLoad;
  ld.iaddr = 0x400000;
  // Stream of loads at 64B stride: every demand miss prefetches the next
  // line, so roughly every other line should hit thanks to the prefetcher.
  for (int i = 0; i < 256; ++i) {
    ld.daddr = 0x10000000 + static_cast<std::uint64_t>(i) * 64;
    core.execute(ld);
  }
  const auto& c = core.counters();
  EXPECT_GT(c[event_index(Event::kL1DcachePrefetches)], 100u);
  // The prefetcher halves demand misses on a pure stream.
  EXPECT_LT(c[event_index(Event::kL1DcacheLoadMisses)], 160u);
}

TEST(PrefetcherTest, DisabledByDefault) {
  CoreModel core;
  MicroOp ld;
  ld.kind = MicroOp::Kind::kLoad;
  ld.iaddr = 0x400000;
  for (int i = 0; i < 64; ++i) {
    ld.daddr = 0x20000000 + static_cast<std::uint64_t>(i) * 64;
    core.execute(ld);
  }
  EXPECT_EQ(core.counters()[event_index(Event::kL1DcachePrefetches)], 0u);
}

TEST(PrefetcherTest, ImprovesStreamingIpc) {
  Rng rng(0x26);
  const auto profile = sample_benign(BenignArchetype::kStreamingUtility, rng);

  auto instructions_in = [&](bool prefetch) {
    CoreConfig cfg;
    cfg.next_line_prefetcher = prefetch;
    CoreModel core(cfg);
    WorkloadGenerator gen(profile, 0x27);
    run_cycles(gen, core, 200'000);
    return core.counters()[event_index(Event::kInstructions)];
  };
  // More instructions complete in the same cycle budget with prefetching.
  EXPECT_GT(instructions_in(true), instructions_in(false));
}

// -------------------------------------------------------------- verilog --

VerilogOptions options_for(const Dataset& d) {
  VerilogOptions opt;
  opt.scale_reference = &d;
  return opt;
}

TEST(VerilogTest, TreeModuleIsStructurallySound) {
  const Dataset d = make_blobs(100, 0x31, 4);
  DecisionTree tree;
  tree.fit(d);
  const auto module = generate_verilog(tree, "j48_detector", options_for(d));
  EXPECT_EQ(verilog_lint(module), "");
  EXPECT_NE(module.source.find("module j48_detector"), std::string::npos);
  EXPECT_NE(module.source.find("assign class_out"), std::string::npos);
  EXPECT_EQ(module.input_scale.size(), 4u);
}

TEST(VerilogTest, OneRModuleIsStructurallySound) {
  const Dataset d = make_blobs(100, 0x32);
  OneR oner;
  oner.fit(d);
  const auto module = generate_verilog(oner, "oner_detector", options_for(d));
  EXPECT_EQ(verilog_lint(module), "");
}

TEST(VerilogTest, RipperModuleHasRuleWires) {
  const Dataset d = make_blobs(120, 0x33);
  Ripper rules;
  rules.fit(d);
  const auto module = generate_verilog(rules, "jrip_detector", options_for(d));
  EXPECT_EQ(verilog_lint(module), "");
  if (!rules.rules().empty()) {
    EXPECT_NE(module.source.find("wire rule0"), std::string::npos);
  }
}

TEST(VerilogTest, MlrModuleHasScoresAndArgmax) {
  const Dataset d = make_blobs(80, 0x34, 3, 3);
  LogisticRegression mlr;
  mlr.fit(d);
  const auto module = generate_verilog(mlr, "mlr_stage1", options_for(d));
  EXPECT_EQ(verilog_lint(module), "");
  EXPECT_NE(module.source.find("score0"), std::string::npos);
  EXPECT_NE(module.source.find("score2"), std::string::npos);
}

TEST(VerilogTest, AdaBoostOfTreesEmitsVotingLogic) {
  const Dataset d = make_blobs(120, 0x3A);
  AdaBoost::Params bp;
  bp.rounds = 5;
  AdaBoost boosted(std::make_unique<DecisionTree>(), bp);
  boosted.fit(d);
  const auto module =
      generate_verilog(boosted, "boosted_j48", options_for(d));
  EXPECT_EQ(verilog_lint(module), "");
  EXPECT_NE(module.source.find("member0_class"), std::string::npos);
  EXPECT_NE(module.source.find("vote0"), std::string::npos);
  EXPECT_NE(module.source.find("vote1"), std::string::npos);
}

TEST(VerilogTest, AdaBoostOfMlpIsRejected) {
  const Dataset d = make_blobs(60, 0x3B);
  Mlp::Params mp;
  mp.epochs = 10;
  AdaBoost boosted(std::make_unique<Mlp>(mp));
  boosted.fit(d);
  EXPECT_THROW(generate_verilog(boosted, "nope", options_for(d)),
               std::invalid_argument);
}

TEST(VerilogTest, UnsupportedClassifierThrows) {
  const Dataset d = make_blobs(40, 0x35);
  Mlp::Params p;
  p.epochs = 10;
  Mlp mlp(p);
  mlp.fit(d);
  EXPECT_THROW(generate_verilog(mlp, "nope", options_for(d)),
               std::invalid_argument);
}

TEST(VerilogTest, UntrainedAndBadOptionsThrow) {
  const Dataset d = make_blobs(40, 0x36);
  DecisionTree tree;
  EXPECT_THROW(generate_verilog(tree, "x", options_for(d)),
               std::invalid_argument);
  tree.fit(d);
  VerilogOptions no_ref;
  EXPECT_THROW(generate_verilog(tree, "x", no_ref), std::invalid_argument);
  const Dataset wrong = make_blobs(10, 0x37, 7);
  EXPECT_THROW(generate_verilog(tree, "x", options_for(wrong)),
               std::invalid_argument);
}

/// A Verilog signed decimal literal as verilog_gen prints it.
std::string signed_literal(int width, std::int64_t value) {
  if (value < 0)
    return "-" + std::to_string(width) + "'sd" + std::to_string(-value);
  return std::to_string(width) + "'sd" + std::to_string(value);
}

/// Per-feature max |value| — quantize()'s scale reference, matching the
/// scan generate_verilog runs over its scale_reference dataset.
std::vector<double> max_abs_of(const Dataset& d) {
  std::vector<double> out(d.feature_count(), 0.0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    const auto x = d.features(i);
    for (std::size_t f = 0; f < out.size(); ++f)
      out[f] = std::max(out[f], std::abs(x[f]));
  }
  return out;
}

TEST(VerilogTest, TreeConstantsMatchQuantizedTables) {
  const Dataset d = make_blobs(100, 0x41, 4);
  DecisionTree tree;
  tree.fit(d);
  const auto module = generate_verilog(tree, "qmatch", options_for(d));

  // Re-lower through the same quantization the RTL was printed from.
  const auto qm = compiled::quantize(
      tree, {module.format.width(), module.format}, max_abs_of(d));
  const auto* qt = dynamic_cast<const compiled::QuantTree*>(qm.get());
  ASSERT_NE(qt, nullptr);
  ASSERT_EQ(module.input_scale.size(), qm->input_scale().size());
  for (std::size_t f = 0; f < module.input_scale.size(); ++f)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(module.input_scale[f]),
              std::bit_cast<std::uint64_t>(qm->input_scale()[f]));

  // Every internal-node threshold of the integer model appears verbatim as
  // an RTL constant — the bit-match is textual, not approximate.
  for (std::size_t i = 0; i < qt->node_count(); ++i) {
    if (qt->node_left()[i] < 0) continue;  // leaf
    const std::string lit =
        signed_literal(module.format.width(), qt->node_threshold()[i]);
    EXPECT_NE(module.source.find(lit), std::string::npos)
        << "missing threshold constant " << lit;
  }
}

TEST(VerilogTest, MlrConstantsMatchQuantizedTables) {
  const Dataset d = make_blobs(80, 0x42, 3, 3);
  LogisticRegression mlr;
  mlr.fit(d);
  const auto module = generate_verilog(mlr, "qmlr", options_for(d));

  const auto qm = compiled::quantize(
      mlr, {module.format.width(), module.format}, max_abs_of(d));
  const auto* ql = dynamic_cast<const compiled::QuantLinear*>(qm.get());
  ASSERT_NE(ql, nullptr);
  for (std::size_t c = 0; c < ql->class_count(); ++c)
    for (std::size_t f = 0; f < ql->feature_count(); ++f) {
      const std::string lit = signed_literal(
          module.format.width(), ql->weights()[c * ql->weight_stride() + f]);
      EXPECT_NE(module.source.find(lit), std::string::npos)
          << "missing weight constant " << lit;
    }
}

TEST(VerilogTest, TestbenchGoldenVectorsMatchQuantizedModel) {
  const Dataset d = make_blobs(60, 0x43, 4);
  DecisionTree tree;
  tree.fit(d);
  const auto module = generate_verilog(tree, "tb_match", options_for(d));
  const std::size_t vectors = 12;
  const std::string tb = generate_testbench(module, tree, d, vectors);
  EXPECT_NE(tb.find("module tb_match_tb"), std::string::npos);
  EXPECT_NE(tb.find("PASS: all 12 vectors"), std::string::npos);

  // Each golden vector is the quantized model's own answer on the same
  // integer inputs the testbench drives.
  const auto qm = compiled::quantize(
      tree, {module.format.width(), module.format}, max_abs_of(d));
  std::vector<std::int16_t> q(d.feature_count());
  for (std::size_t i = 0; i < vectors; ++i) {
    qm->quantize_inputs(d.features(i), q.data());
    const std::string check = "check(1'd" +
                              std::to_string(qm->eval_class(q.data())) + ", " +
                              std::to_string(i) + ");";
    EXPECT_NE(tb.find(check), std::string::npos)
        << "missing golden vector " << check;
  }
}

TEST(VerilogTest, LintCatchesCorruption) {
  const Dataset d = make_blobs(60, 0x38);
  DecisionTree tree;
  tree.fit(d);
  auto module = generate_verilog(tree, "victim", options_for(d));
  module.source.replace(module.source.find("endmodule"), 9, "endmodul!");
  EXPECT_NE(verilog_lint(module), "");
}

// ------------------------------------------------------ online detector --

class OnlineDetectorTest : public ::testing::Test {
 protected:
  // Per-window detection needs full-length (80k-cycle) sampling windows;
  // the short windows the other fixtures use are too noisy for meaningful
  // single-window scores.
  static const TwoStageHmd& pipeline() {
    static const TwoStageHmd hmd = [] {
      CorpusConfig corpus;
      corpus.scale = 0.1;
      const std::string cache =
          (std::filesystem::temp_directory_path() / "smart2_test_cache")
              .string();
      const Dataset d = cached_hpc_dataset(corpus, CollectorConfig{}, cache);
      Rng rng(55);
      auto [train, test] = d.stratified_split(0.6, rng);
      TwoStageConfig cfg;
      cfg.stage2_features = Stage2Features::kCommon4;
      cfg.boost = true;
      TwoStageHmd h(cfg);
      h.train(train);
      return h;
    }();
    return hmd;
  }

  static std::vector<std::vector<double>> windows_of(AppClass cls,
                                                     std::uint64_t seed,
                                                     std::size_t count) {
    Rng rng(seed);
    AppSpec app;
    app.profile = sample_profile(cls, rng);
    app.app_seed = rng.next_u64();
    const HpcCollector collector{CollectorConfig{}};
    std::vector<Event> events;
    for (std::size_t f : pipeline().plan().common)
      events.push_back(event_at(f));
    const auto trace = collector.trace(app, events, count);
    std::vector<std::vector<double>> out;
    for (const auto& row : trace)
      out.emplace_back(row.begin(), row.end());
    return out;
  }
};

TEST_F(OnlineDetectorTest, RejectsBadConfigs) {
  OnlineDetectorConfig bad;
  bad.smoothing = 0.0;
  EXPECT_THROW(OnlineDetector(pipeline(), bad), std::invalid_argument);
  bad = OnlineDetectorConfig{};
  bad.clear_threshold = 0.9;
  EXPECT_THROW(OnlineDetector(pipeline(), bad), std::invalid_argument);
  bad = OnlineDetectorConfig{};
  bad.confirm_windows = 0;
  EXPECT_THROW(OnlineDetector(pipeline(), bad), std::invalid_argument);
}

TEST_F(OnlineDetectorTest, RejectsUntrainedPipeline) {
  TwoStageHmd untrained;
  EXPECT_THROW(OnlineDetector{untrained}, std::invalid_argument);
}

TEST_F(OnlineDetectorTest, MalwareStreamRaisesAlarm) {
  OnlineDetector detector(pipeline());
  // Scan several trojan specimens; most streams should alarm.
  int alarms = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    detector.reset();
    for (const auto& w : windows_of(AppClass::kTrojan, seed + 4000, 12))
      detector.observe(w);
    if (detector.alarmed()) ++alarms;
  }
  EXPECT_GE(alarms, 4);
}

TEST_F(OnlineDetectorTest, BenignStreamMostlyStaysQuiet) {
  OnlineDetector detector(pipeline());
  int alarms = 0;
  for (std::uint64_t seed = 11; seed <= 16; ++seed) {
    detector.reset();
    for (const auto& w : windows_of(AppClass::kBenign, seed, 10))
      detector.observe(w);
    if (detector.alarmed()) ++alarms;
  }
  EXPECT_LE(alarms, 2);
}

TEST_F(OnlineDetectorTest, AlarmEdgeFiresOnce) {
  OnlineDetector detector(pipeline());
  int edges = 0;
  for (const auto& w : windows_of(AppClass::kVirus, 21, 12)) {
    const auto verdict = detector.observe(w);
    if (verdict.alarm_edge) ++edges;
  }
  EXPECT_LE(edges, 2);  // hysteresis keeps the alarm from chattering
}

TEST_F(OnlineDetectorTest, ResetClearsState) {
  OnlineDetector detector(pipeline());
  for (const auto& w : windows_of(AppClass::kBackdoor, 31, 8))
    detector.observe(w);
  detector.reset();
  EXPECT_FALSE(detector.alarmed());
  EXPECT_EQ(detector.windows_observed(), 0u);
  EXPECT_DOUBLE_EQ(detector.smoothed_score(), 0.0);
}

// ---------------------------------------------------- threshold tuning ---

TEST(ThresholdTest, MeetsFprBudgetOnKnownScores) {
  const std::vector<int> labels = {0, 0, 0, 0, 1, 1, 1, 1};
  const std::vector<double> scores = {0.1, 0.2, 0.3, 0.8, 0.6, 0.7, 0.9, 0.95};
  // FPR budget 0.25 allows exactly one negative (0.8) above the cut.
  const double thr = threshold_for_fpr(labels, scores, 0.25);
  std::size_t fp = 0;
  std::size_t tp = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (scores[i] < thr) continue;
    (labels[i] == 1 ? tp : fp) += 1;
  }
  EXPECT_LE(fp, 1u);
  EXPECT_GE(tp, 3u);
}

TEST(ThresholdTest, ZeroBudgetExcludesAllNegatives) {
  const std::vector<int> labels = {0, 1, 0, 1};
  const std::vector<double> scores = {0.4, 0.6, 0.5, 0.9};
  const double thr = threshold_for_fpr(labels, scores, 0.0);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 0) {
      EXPECT_LT(scores[i], thr);
    }
  }
}

TEST(ThresholdTest, BadArgumentsThrow) {
  const std::vector<int> labels = {0, 1};
  const std::vector<double> scores = {0.1};
  EXPECT_THROW(threshold_for_fpr(labels, scores, 0.1),
               std::invalid_argument);
  const std::vector<double> ok = {0.1, 0.2};
  EXPECT_THROW(threshold_for_fpr(labels, ok, 1.5), std::invalid_argument);
}

// ----------------------------------------------------- population noise --

TEST(PopulationNoiseTest, HigherNoiseWidensParameterSpread) {
  PopulationNoise calm;
  calm.sigma = 0.05;
  calm.atypical_fraction = 0.0;
  PopulationNoise wild;
  wild.sigma = 0.6;
  wild.atypical_fraction = 0.0;

  auto spread_of = [](const PopulationNoise& noise) {
    Rng rng(0x99);
    std::vector<double> branch;
    for (int i = 0; i < 200; ++i)
      branch.push_back(
          sample_profile(AppClass::kVirus, rng, noise).phases[0].branch_frac);
    return stats::stddev(branch);
  };
  EXPECT_GT(spread_of(wild), spread_of(calm) * 2.0);
}

TEST(PopulationNoiseTest, CorpusConfigCarriesNoise) {
  CorpusConfig a;
  a.scale = 0.0;
  CorpusConfig b = a;
  b.noise.sigma = 0.6;
  // Different noise -> different profiles (same seed).
  const auto ca = build_corpus(a);
  const auto cb = build_corpus(b);
  ASSERT_EQ(ca.size(), cb.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < ca.size(); ++i)
    if (ca[i].profile.phases[0].branch_frac !=
        cb[i].profile.phases[0].branch_frac)
      any_difference = true;
  EXPECT_TRUE(any_difference);
  // ... and a different dataset-cache fingerprint.
  EXPECT_NE(dataset_fingerprint(a, CollectorConfig{}),
            dataset_fingerprint(b, CollectorConfig{}));
}

}  // namespace
}  // namespace smart2

// smart2::serve — the sharded streaming service's contracts:
//  * ring FIFO + backpressure accounting for both drop policies,
//  * verdict equivalence with a lone OnlineDetector (the oracle),
//  * byte-identical verdict streams across SMART2_THREADS lanes and SIMD
//    modes for a fixed ingest script,
//  * hot model swap: serialize-round-trip no-op, tick-boundary effect,
//    single-generation-per-tick consistency under a concurrent swap,
//  * LRU / TTL eviction and stream revival,
//  * the SERVING.md env-knob drift guard.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/obs.hpp"
#include "common/parallel.hpp"
#include "common/simd.hpp"
#include "core/online_detector.hpp"
#include "core/two_stage.hpp"
#include "hpc/dataset_cache.hpp"
#include "serve/feed.hpp"
#include "serve/ring.hpp"
#include "serve/service.hpp"

namespace smart2::serve {
namespace {

CollectorConfig fast_collector() {
  CollectorConfig cfg;
  cfg.cycles_per_sample = 20'000;
  cfg.samples_per_run = 2;
  cfg.warmup_cycles = 20'000;
  return cfg;
}

/// Shared small profiled dataset (built once; profiling dominates runtime).
const Dataset& small_dataset() {
  static const Dataset d = [] {
    CorpusConfig corpus;
    corpus.scale = 0.04;  // ~145 apps
    return cached_hpc_dataset(corpus, fast_collector(), /*cache_dir=*/"");
  }();
  return d;
}

/// Shared trained pipeline (Common4 + fixed J48 stage 2, compiled).
std::shared_ptr<const TwoStageHmd> shared_model() {
  static const std::shared_ptr<const TwoStageHmd> model = [] {
    TwoStageConfig cfg;
    cfg.stage2_model = "J48";
    auto hmd = std::make_shared<TwoStageHmd>(cfg);
    hmd->train(small_dataset());
    return std::shared_ptr<const TwoStageHmd>(hmd);
  }();
  return model;
}

/// Shared synthetic fleet feed over the model's common events.
const StreamFeed& shared_feed() {
  static const StreamFeed feed = [] {
    FeedConfig cfg;
    cfg.streams = 512;
    cfg.profiles_per_class = 2;
    cfg.bank_windows = 8;
    const HpcCollector collector(fast_collector());
    return StreamFeed(cfg, collector, shared_model()->plan().common);
  }();
  return feed;
}

/// Push one sample whose window is the constant v (SoA ring API).
bool push_sample(SampleRing& ring, std::uint64_t id, double v) {
  std::array<double, kCommonFeatureCount> window;
  window.fill(v);
  return ring.push(id, /*ingest_ns=*/0, window.data());
}

/// Canonical byte serialization of a verdict stream: every double as its
/// raw bit pattern, so equality means bit-identity.
void append_verdict(std::string& log, const StreamVerdict& rec) {
  log += std::to_string(rec.stream_id);
  log += ':';
  log += std::to_string(rec.seq);
  log += ':';
  log += std::to_string(rec.generation);
  log += ':';
  log += std::to_string(std::bit_cast<std::uint64_t>(rec.verdict.window_score));
  log += ':';
  log +=
      std::to_string(std::bit_cast<std::uint64_t>(rec.verdict.smoothed_score));
  log += ':';
  log += rec.verdict.alarmed ? '1' : '0';
  log += rec.verdict.alarm_edge ? '1' : '0';
  log += std::to_string(label_of(rec.verdict.suspected_class));
  log += '\n';
}

/// The fixed ingest script every determinism test replays: `streams`
/// streams submit one feed window per tick for `ticks` ticks; when
/// `swap_to` is set, it is installed before the tick at `swap_at` (1-based
/// tick numbering). Returns the concatenated canonical verdict stream
/// (shards in index order per tick).
std::string run_script(const ServeConfig& cfg, std::size_t streams,
                       std::size_t ticks,
                       std::shared_ptr<const TwoStageHmd> swap_to = nullptr,
                       std::size_t swap_at = 0) {
  DetectionService service(shared_model(), cfg);
  std::vector<double> window(kCommonFeatureCount);
  std::string log;
  for (std::size_t t = 1; t <= ticks; ++t) {
    if (swap_to != nullptr && t == swap_at) service.swap_model(swap_to);
    for (std::uint64_t s = 0; s < streams; ++s) {
      shared_feed().window(s, t, window);
      service.submit(s, window);
    }
    service.tick();
    for (std::size_t sh = 0; sh < service.shard_count(); ++sh)
      for (const StreamVerdict& rec : service.verdicts(sh))
        append_verdict(log, rec);
  }
  return log;
}

// --------------------------------------------------------------- ring ---

TEST(SampleRingTest, FifoPushAtConsume) {
  SampleRing ring(3);
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_TRUE(push_sample(ring, 1, 1.0));
  EXPECT_TRUE(push_sample(ring, 2, 2.0));
  EXPECT_TRUE(push_sample(ring, 3, 3.0));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(push_sample(ring, 4, 4.0));  // full: rejected
  EXPECT_EQ(ring.stream_id_at(0), 1u);
  EXPECT_EQ(ring.stream_id_at(2), 3u);
  EXPECT_EQ(ring.window_at(0)[0], 1.0);
  ring.pop_front();  // drop-oldest path
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.stream_id_at(0), 2u);
  EXPECT_TRUE(push_sample(ring, 4, 4.0));  // wraps around
  EXPECT_EQ(ring.stream_id_at(2), 4u);
  EXPECT_EQ(ring.window_at(2)[kCommonFeatureCount - 1], 4.0);
  ring.consume(2);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.stream_id_at(0), 4u);
  ring.clear();
  EXPECT_TRUE(ring.empty());
}

TEST(SampleRingTest, ContiguousRunsAndBlockViewsAcrossTheWrap) {
  SampleRing ring(4);
  for (std::uint64_t id = 1; id <= 4; ++id)
    ASSERT_TRUE(push_sample(ring, id, static_cast<double>(id)));
  // Head at 0: the whole queue is one run and the block views are the
  // backing arrays themselves.
  EXPECT_EQ(ring.contiguous(0), 4u);
  EXPECT_EQ(ring.id_block(0)[3], 4u);
  EXPECT_EQ(ring.window_block(0)[3 * kCommonFeatureCount], 4.0);

  // Partial drain + refill: head is mid-array, the queue straddles the
  // physical wrap and splits into two runs.
  ring.consume(3);                             // head -> 3, id 4 queued
  ASSERT_TRUE(push_sample(ring, 5, 5.0));      // lands at physical 0
  ASSERT_TRUE(push_sample(ring, 6, 6.0));
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.contiguous(0), 1u);  // run A: id 4 at the physical end
  EXPECT_EQ(ring.id_block(0)[0], 4u);
  EXPECT_EQ(ring.contiguous(1), 2u);  // run B: ids 5, 6 from physical 0
  EXPECT_EQ(ring.id_block(1)[0], 5u);
  EXPECT_EQ(ring.id_block(1)[1], 6u);
  EXPECT_EQ(ring.window_block(1)[kCommonFeatureCount], 6.0);
  // Logical accessors agree with the split block views.
  EXPECT_EQ(ring.stream_id_at(0), 4u);
  EXPECT_EQ(ring.stream_id_at(2), 6u);

  // Full drain rebases the head: the next fill is contiguous again.
  ring.consume(3);
  EXPECT_TRUE(ring.empty());
  ASSERT_TRUE(push_sample(ring, 7, 7.0));
  EXPECT_EQ(ring.contiguous(0), 1u);
  EXPECT_EQ(ring.id_block(0)[0], 7u);
}

// ------------------------------------------------------------- config ---

TEST(ServeConfigTest, FromEnvReadsEveryKnob) {
  ASSERT_EQ(setenv("SMART2_SERVE_SHARDS", "3", 1), 0);
  ASSERT_EQ(setenv("SMART2_SERVE_QUEUE", "17", 1), 0);
  ASSERT_EQ(setenv("SMART2_SERVE_STREAM_CAP", "9", 1), 0);
  ASSERT_EQ(setenv("SMART2_SERVE_EVICT_TTL", "5", 1), 0);
  ASSERT_EQ(setenv("SMART2_SERVE_DROP_POLICY", "oldest", 1), 0);
  const ServeConfig cfg = ServeConfig::from_env();
  EXPECT_EQ(cfg.shards, 3u);
  EXPECT_EQ(cfg.queue_capacity, 17u);
  EXPECT_EQ(cfg.max_streams_per_shard, 9u);
  EXPECT_EQ(cfg.evict_after_ticks, 5u);
  EXPECT_EQ(cfg.drop_policy, DropPolicy::kDropOldest);
  // Every consult lands in the obs env-knob registry (the SERVING.md
  // docs/code drift guard).
  const std::vector<obs::EnvKnobView> knobs = obs::env_knobs();
  for (const char* name :
       {"SMART2_SERVE_SHARDS", "SMART2_SERVE_QUEUE", "SMART2_SERVE_STREAM_CAP",
        "SMART2_SERVE_EVICT_TTL", "SMART2_SERVE_DROP_POLICY"}) {
    bool found = false;
    for (const obs::EnvKnobView& k : knobs)
      if (k.name == name) {
        found = true;
        EXPECT_TRUE(k.set) << name;
      }
    EXPECT_TRUE(found) << name << " never consulted via obs::env_knob";
  }
  unsetenv("SMART2_SERVE_SHARDS");
  unsetenv("SMART2_SERVE_QUEUE");
  unsetenv("SMART2_SERVE_STREAM_CAP");
  unsetenv("SMART2_SERVE_EVICT_TTL");
  unsetenv("SMART2_SERVE_DROP_POLICY");
  const ServeConfig defaults = ServeConfig::from_env();
  EXPECT_EQ(defaults.shards, ServeConfig{}.shards);
  EXPECT_EQ(defaults.drop_policy, DropPolicy::kDropNewest);
}

TEST(DetectionServiceTest, RejectsInvalidModelsAndConfigs) {
  ServeConfig cfg;
  EXPECT_THROW(DetectionService(nullptr, cfg), std::invalid_argument);
  {
    TwoStageConfig untrained;
    EXPECT_THROW(
        DetectionService(std::make_shared<TwoStageHmd>(untrained), cfg),
        std::invalid_argument);
  }
  {
    ServeConfig bad = cfg;
    bad.shards = 0;
    EXPECT_THROW(DetectionService(shared_model(), bad), std::invalid_argument);
  }
  {
    ServeConfig bad = cfg;
    bad.queue_capacity = 0;
    EXPECT_THROW(DetectionService(shared_model(), bad), std::invalid_argument);
  }
  {
    ServeConfig bad = cfg;
    bad.detector.smoothing = 0.0;
    EXPECT_THROW(DetectionService(shared_model(), bad), std::invalid_argument);
  }
  DetectionService service(shared_model(), cfg);
  const std::vector<double> short_window(2, 0.0);
  EXPECT_THROW(service.submit(1, short_window), std::invalid_argument);
}

// -------------------------------------------------------- equivalence ---

TEST(DetectionServiceTest, VerdictsMatchLoneOnlineDetector) {
  ServeConfig cfg;
  cfg.shards = 4;
  cfg.queue_capacity = 256;
  cfg.max_streams_per_shard = 64;
  DetectionService service(shared_model(), cfg);

  constexpr std::size_t kStreams = 96;
  constexpr std::size_t kTicks = 6;
  std::vector<double> window(kCommonFeatureCount);
  std::map<std::uint64_t, std::vector<StreamVerdict>> by_stream;
  for (std::size_t t = 1; t <= kTicks; ++t) {
    for (std::uint64_t s = 0; s < kStreams; ++s) {
      shared_feed().window(s, t, window);
      ASSERT_TRUE(service.submit(s, window));
    }
    ASSERT_EQ(service.tick(), kStreams);
    for (std::size_t sh = 0; sh < service.shard_count(); ++sh)
      for (const StreamVerdict& rec : service.verdicts(sh))
        by_stream[rec.stream_id].push_back(rec);
  }

  // Oracle: a lone OnlineDetector fed the same per-stream window sequence
  // must agree bit for bit.
  for (std::uint64_t s = 0; s < kStreams; ++s) {
    OnlineDetector lone(*shared_model(), cfg.detector);
    const std::vector<StreamVerdict>& got = by_stream[s];
    ASSERT_EQ(got.size(), kTicks);
    for (std::size_t t = 1; t <= kTicks; ++t) {
      shared_feed().window(s, t, window);
      const OnlineDetector::WindowVerdict want = lone.observe(window);
      const OnlineDetector::WindowVerdict& have = got[t - 1].verdict;
      EXPECT_EQ(got[t - 1].seq, t);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(have.window_score),
                std::bit_cast<std::uint64_t>(want.window_score));
      EXPECT_EQ(std::bit_cast<std::uint64_t>(have.smoothed_score),
                std::bit_cast<std::uint64_t>(want.smoothed_score));
      EXPECT_EQ(have.alarmed, want.alarmed);
      EXPECT_EQ(have.alarm_edge, want.alarm_edge);
      EXPECT_EQ(have.suspected_class, want.suspected_class);
    }
  }
}

// -------------------------------------------------------- determinism ---

TEST(DetectionServiceTest, VerdictStreamByteIdenticalAcrossThreadCounts) {
  ServeConfig cfg;
  cfg.shards = 4;
  cfg.queue_capacity = 256;
  cfg.max_streams_per_shard = 32;  // small: forces LRU churn into the script
  cfg.evict_after_ticks = 2;       // and TTL sweeps
  // Swap to a serialize-round-tripped copy mid-script so the generation
  // bump is part of the byte stream being compared.
  std::stringstream blob;
  shared_model()->save(blob);
  const auto reloaded =
      std::make_shared<const TwoStageHmd>(TwoStageHmd::load(blob));

  parallel::set_thread_count(1);
  const std::string lanes1 = run_script(cfg, 128, 5, reloaded, 3);
  parallel::set_thread_count(2);
  const std::string lanes2 = run_script(cfg, 128, 5, reloaded, 3);
  parallel::set_thread_count(4);
  const std::string lanes4 = run_script(cfg, 128, 5, reloaded, 3);
  parallel::set_thread_count(0);  // restore the env-derived default

  EXPECT_EQ(lanes1, lanes2);
  EXPECT_EQ(lanes1, lanes4);
  EXPECT_NE(lanes1.find(":2:"), std::string::npos);  // generation 2 appears
}

TEST(DetectionServiceTest, VerdictStreamIdenticalUnderForcedScalarSimd) {
  ServeConfig cfg;
  cfg.shards = 2;
  cfg.queue_capacity = 128;
  cfg.max_streams_per_shard = 64;
  const std::string native = run_script(cfg, 64, 3);
  simd::force_scalar(true);
  const std::string scalar = run_script(cfg, 64, 3);
  simd::force_scalar(false);
  EXPECT_EQ(native, scalar);
}

TEST(DetectionServiceTest, BatchedIndexMatchesInterleavedReference) {
  // The batched resolve pass reorders an epoch's index probes ahead of the
  // verdict fold; SERVING.md argues the reordering is invisible whenever
  // the stream capacity exceeds the epoch width. Drive both paths through
  // heavy capacity churn (600 streams over 512 slots), TTL sweeps, and a
  // mid-script model swap: the verdict streams must be byte-identical.
  ServeConfig batched;
  batched.shards = 1;
  batched.queue_capacity = 1024;
  batched.max_streams_per_shard = 512;  // > kDetectEpoch: kAuto batches
  batched.evict_after_ticks = 3;
  ASSERT_GT(batched.max_streams_per_shard, TwoStageHmd::kDetectEpoch);
  ServeConfig interleaved = batched;
  interleaved.index_mode = IndexMode::kInterleaved;

  std::stringstream blob;
  shared_model()->save(blob);
  const auto reloaded =
      std::make_shared<const TwoStageHmd>(TwoStageHmd::load(blob));
  const std::string a = run_script(batched, 600, 6, reloaded, 4);
  const std::string b = run_script(interleaved, 600, 6, reloaded, 4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find(":2:"), std::string::npos);  // generation 2 appears
}

TEST(DetectionServiceTest, WrappedQueueMatchesUnwrappedSurvivors) {
  // Drop-oldest on a small ring leaves the queue straddling the physical
  // wrap point, so the tick's zero-copy clamp carves it into short epochs
  // (250 + 50 here, partial final epoch included). A large-ring service
  // fed only the surviving samples chunks differently (256 + 44) — the
  // verdict streams must still match byte for byte (the epoch-chunking
  // invariance SERVING.md documents).
  ServeConfig wrapped;
  wrapped.shards = 1;
  wrapped.queue_capacity = 300;
  wrapped.max_streams_per_shard = 512;
  wrapped.drop_policy = DropPolicy::kDropOldest;
  ServeConfig plain = wrapped;
  plain.queue_capacity = 512;

  DetectionService a(shared_model(), wrapped);
  DetectionService b(shared_model(), plain);
  std::vector<double> window(kCommonFeatureCount);
  for (std::uint64_t s = 0; s < 350; ++s) {
    shared_feed().window(s, 1, window);
    a.submit(s, window);
    if (s >= 50) b.submit(s, window);  // `a` drops its 50 oldest
  }
  EXPECT_EQ(a.tick(), 300u);
  EXPECT_EQ(b.tick(), 300u);
  const ServeStats sa = a.stats();
  EXPECT_EQ(sa.submitted, 350u);
  EXPECT_EQ(sa.dropped, 50u);
  EXPECT_EQ(sa.submitted, sa.verdicts + sa.dropped);
  std::string la, lb;
  for (const StreamVerdict& rec : a.verdicts(0)) append_verdict(la, rec);
  for (const StreamVerdict& rec : b.verdicts(0)) append_verdict(lb, rec);
  EXPECT_EQ(la, lb);
}

// ----------------------------------------------------------- hot swap ---

TEST(DetectionServiceTest, SwapToRoundTrippedModelIsVerdictNoOp) {
  ServeConfig cfg;
  cfg.shards = 3;
  cfg.queue_capacity = 128;
  cfg.max_streams_per_shard = 64;
  std::stringstream blob;
  shared_model()->save(blob);
  const auto reloaded =
      std::make_shared<const TwoStageHmd>(TwoStageHmd::load(blob));

  const std::string control = run_script(cfg, 64, 6);
  const std::string swapped = run_script(cfg, 64, 6, reloaded, 4);
  // The only difference a round-trip swap may introduce is the generation
  // field: verdict values are untouched (save/load restores detection
  // behaviour exactly). Normalize generations and compare.
  auto strip_generation = [](const std::string& log) {
    std::string out;
    std::size_t field = 0;
    for (const char c : log) {
      if (c == ':') ++field;
      if (c == '\n') field = 0;
      if (field == 2 && c != ':') continue;  // the generation digits
      out += c;
    }
    return out;
  };
  EXPECT_NE(control, swapped);  // generations differ after the swap tick
  EXPECT_EQ(strip_generation(control), strip_generation(swapped));
}

TEST(DetectionServiceTest, SwapTakesEffectAtNextTickBoundary) {
  ServeConfig cfg;
  cfg.shards = 2;
  DetectionService service(shared_model(), cfg);
  EXPECT_EQ(service.generation(), 1u);
  std::vector<double> window(kCommonFeatureCount);
  shared_feed().window(7, 1, window);
  service.submit(7, window);
  service.tick();
  for (std::size_t sh = 0; sh < service.shard_count(); ++sh)
    for (const StreamVerdict& rec : service.verdicts(sh))
      EXPECT_EQ(rec.generation, 1u);

  std::stringstream blob;
  shared_model()->save(blob);
  service.swap_model(
      std::make_shared<const TwoStageHmd>(TwoStageHmd::load(blob)));
  EXPECT_EQ(service.generation(), 2u);
  shared_feed().window(7, 2, window);
  service.submit(7, window);
  service.tick();
  for (std::size_t sh = 0; sh < service.shard_count(); ++sh)
    for (const StreamVerdict& rec : service.verdicts(sh)) {
      EXPECT_EQ(rec.generation, 2u);
      EXPECT_EQ(rec.seq, 2u);  // stream state survives the swap
    }
}

TEST(DetectionServiceTest, ConcurrentSwapYieldsSingleGenerationPerTick) {
  // Race a swap against a running tick through the pool (never a raw
  // std::thread). Whatever the interleaving, the tick must score every
  // verdict on the one generation it snapshotted at entry, and the
  // generation sequence across ticks must be non-decreasing.
  ServeConfig cfg;
  cfg.shards = 2;
  cfg.queue_capacity = 2048;
  cfg.max_streams_per_shard = 1024;
  DetectionService service(shared_model(), cfg);
  std::stringstream blob;
  shared_model()->save(blob);
  const auto reloaded =
      std::make_shared<const TwoStageHmd>(TwoStageHmd::load(blob));

  parallel::set_thread_count(2);
  std::vector<double> window(kCommonFeatureCount);
  for (std::uint64_t s = 0; s < 512; ++s) {
    shared_feed().window(s, 1, window);
    service.submit(s, window);
  }
  parallel::parallel_for(0, 2, [&](std::size_t i) {
    if (i == 0) service.tick();
    else service.swap_model(reloaded);
  });
  parallel::set_thread_count(0);

  std::uint64_t tick_generation = 0;
  for (std::size_t sh = 0; sh < service.shard_count(); ++sh)
    for (const StreamVerdict& rec : service.verdicts(sh)) {
      if (tick_generation == 0) tick_generation = rec.generation;
      EXPECT_EQ(rec.generation, tick_generation)
          << "verdicts of one tick span two generations";
    }
  EXPECT_GE(tick_generation, 1u);
  EXPECT_EQ(service.generation(), 2u);
}

TEST(DetectionServiceTest, SwapRejectsIncompatiblePlan) {
  DetectionService service(shared_model(), ServeConfig{});
  EXPECT_THROW(service.swap_model(nullptr), std::invalid_argument);
  TwoStageConfig cfg;
  EXPECT_THROW(service.swap_model(std::make_shared<TwoStageHmd>(cfg)),
               std::invalid_argument);  // untrained successor
}

// ----------------------------------------------- eviction / admission ---

TEST(DetectionServiceTest, IdleStreamIsEvictedThenRevivedFresh) {
  ServeConfig cfg;
  cfg.shards = 1;
  cfg.evict_after_ticks = 2;
  DetectionService service(shared_model(), cfg);
  std::vector<double> window(kCommonFeatureCount);

  // Tick 1: streams A and B. Ticks 2-4: only B. Tick 5: A returns.
  const std::uint64_t kA = 11, kB = 22;
  auto submit_tick = [&](std::size_t t, bool with_a) {
    if (with_a) {
      shared_feed().window(kA, t, window);
      service.submit(kA, window);
    }
    shared_feed().window(kB, t, window);
    service.submit(kB, window);
    service.tick();
  };
  submit_tick(1, true);
  EXPECT_EQ(service.active_streams(), 2u);
  submit_tick(2, false);
  submit_tick(3, false);
  submit_tick(4, false);  // sweep at tick 4 entry: A idle since 1 → evicted
  EXPECT_EQ(service.active_streams(), 1u);
  EXPECT_EQ(service.stats().evicted, 1u);

  submit_tick(5, true);  // revival: A re-admitted with fresh state
  EXPECT_EQ(service.active_streams(), 2u);
  bool saw_a = false;
  for (const StreamVerdict& rec : service.verdicts(0))
    if (rec.stream_id == kA) {
      saw_a = true;
      EXPECT_EQ(rec.seq, 1u);  // seq restarted
      // First window: EWMA state is exactly the raw score.
      EXPECT_EQ(std::bit_cast<std::uint64_t>(rec.verdict.smoothed_score),
                std::bit_cast<std::uint64_t>(rec.verdict.window_score));
    }
  EXPECT_TRUE(saw_a);
  EXPECT_EQ(service.stats().admitted, 3u);  // A, B, then A again
}

TEST(DetectionServiceTest, CapacityAdmissionEvictsLeastRecentlyActive) {
  ServeConfig cfg;
  cfg.shards = 1;
  cfg.max_streams_per_shard = 2;
  DetectionService service(shared_model(), cfg);
  std::vector<double> window(kCommonFeatureCount);
  // Three streams into two slots, every tick: the stream untouched longest
  // is displaced on each admission.
  for (std::size_t t = 1; t <= 3; ++t) {
    for (const std::uint64_t id : {1ull, 2ull, 3ull}) {
      shared_feed().window(id, t, window);
      service.submit(id, window);
    }
    service.tick();
  }
  EXPECT_EQ(service.active_streams(), 2u);
  const ServeStats stats = service.stats();
  // Thrash: with three streams over two slots, every sample displaces the
  // least-recently-active resident, so all 9 samples are fresh admissions.
  EXPECT_EQ(stats.admitted, 9u);
  EXPECT_EQ(stats.evicted, 7u);
  // All verdicts have seq 1: no stream survives long enough to accumulate.
  for (const StreamVerdict& rec : service.verdicts(0))
    EXPECT_EQ(rec.seq, 1u);
}

// ------------------------------------------------------- backpressure ---

TEST(DetectionServiceTest, DropNewestAccountsEverySubmittedSample) {
  ServeConfig cfg;
  cfg.shards = 1;
  cfg.queue_capacity = 2;
  DetectionService service(shared_model(), cfg);
  std::vector<double> window(kCommonFeatureCount);
  shared_feed().window(5, 1, window);
  EXPECT_TRUE(service.submit(5, window));
  EXPECT_TRUE(service.submit(5, window));
  EXPECT_FALSE(service.submit(5, window));  // full: the arrival is dropped
  EXPECT_EQ(service.tick(), 2u);
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.dropped, 1u);
  EXPECT_EQ(stats.verdicts, 2u);
  // The universal accounting identity (SERVING.md): every submitted sample
  // is eventually either scored or dropped.
  EXPECT_EQ(stats.submitted, stats.verdicts + stats.dropped);
}

TEST(DetectionServiceTest, DropOldestKeepsFreshestSamples) {
  ServeConfig cfg;
  cfg.shards = 1;
  cfg.queue_capacity = 2;
  cfg.drop_policy = DropPolicy::kDropOldest;
  DetectionService service(shared_model(), cfg);
  std::vector<double> w1(kCommonFeatureCount), w2(kCommonFeatureCount),
      w3(kCommonFeatureCount);
  shared_feed().window(5, 1, w1);
  shared_feed().window(5, 2, w2);
  shared_feed().window(5, 3, w3);
  EXPECT_TRUE(service.submit(5, w1));
  EXPECT_TRUE(service.submit(5, w2));
  EXPECT_TRUE(service.submit(5, w3));  // displaces w1, enqueues w3
  EXPECT_EQ(service.tick(), 2u);
  const ServeStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.accepted, 3u);  // every arrival entered the ring
  EXPECT_EQ(stats.dropped, 1u);   // ...at the cost of the queue head
  EXPECT_EQ(stats.verdicts, 2u);
  EXPECT_EQ(stats.submitted, stats.verdicts + stats.dropped);
  // The two verdicts are w2 and w3: the survivor set is the freshest.
  ASSERT_EQ(service.verdicts(0).size(), 2u);
  EXPECT_EQ(service.verdicts(0)[0].seq, 1u);
  EXPECT_EQ(service.verdicts(0)[1].seq, 2u);
}

// ------------------------------------------------------------- obs ------

TEST(DetectionServiceTest, LatencyHistogramCountsEveryVerdict) {
  obs::Config saved = obs::config();
  obs::Config cfg;
  cfg.metrics = true;
  obs::configure(cfg);
  obs::histogram("serve.verdict.latency").clear();

  ServeConfig serve_cfg;
  serve_cfg.shards = 2;
  DetectionService service(shared_model(), serve_cfg);
  std::vector<double> window(kCommonFeatureCount);
  for (std::size_t t = 1; t <= 3; ++t) {
    for (std::uint64_t s = 0; s < 32; ++s) {
      shared_feed().window(s, t, window);
      service.submit(s, window);
    }
    service.tick();
  }
  EXPECT_EQ(obs::histogram("serve.verdict.latency").count(),
            service.stats().verdicts);
  obs::configure(saved);
}

// ------------------------------------------------------------- feed -----

TEST(StreamFeedTest, WindowIsPureFunctionOfStreamAndTick) {
  std::vector<double> a(kCommonFeatureCount), b(kCommonFeatureCount);
  shared_feed().window(123, 7, a);
  shared_feed().window(99, 1, b);  // interleave other draws
  shared_feed().window(123, 7, b);
  for (std::size_t j = 0; j < kCommonFeatureCount; ++j)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[j]),
              std::bit_cast<std::uint64_t>(b[j]));
  // Ground truth is stable and spans both populations at this benign mix.
  std::size_t benign = 0;
  for (std::uint64_t s = 0; s < 256; ++s) {
    EXPECT_EQ(shared_feed().class_of(s), shared_feed().class_of(s));
    if (shared_feed().class_of(s) == AppClass::kBenign) ++benign;
  }
  EXPECT_GT(benign, 128u);
  EXPECT_LT(benign, 256u);
}

// ------------------------------------------------------ docs drift ------

TEST(ServingDocsTest, ServingMdDocumentsEveryEnvKnob) {
  const std::string path = std::string(SMART2_SOURCE_DIR) + "/SERVING.md";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "SERVING.md missing at " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();
  for (const char* knob :
       {"SMART2_SERVE_SHARDS", "SMART2_SERVE_QUEUE", "SMART2_SERVE_STREAM_CAP",
        "SMART2_SERVE_EVICT_TTL", "SMART2_SERVE_DROP_POLICY",
        "SMART2_SERVE_STREAMS", "SMART2_SERVE_TICKS", "SMART2_THREADS",
        "SMART2_QUANT"})
    EXPECT_NE(doc.find(knob), std::string::npos)
        << knob << " undocumented in SERVING.md";
  // And the serve observability names SERVING.md points readers at.
  for (const char* name :
       {"serve.shard.ingest", "serve.epoch.infer", "serve.swap",
        "serve.verdict.latency", "serve.ingest.dropped"})
    EXPECT_NE(doc.find(name), std::string::npos)
        << name << " undocumented in SERVING.md";
}

}  // namespace
}  // namespace smart2::serve

// Tests for smart2::obs: span nesting, histogram bucket edges, the
// deterministic parallel-region merge (trace byte-identical across thread
// counts after strip_volatile), the summary table, and the regression that
// the two-stage detector emits exactly one stage-2 span per non-benign
// stage-1 verdict.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "common/obs.hpp"
#include "common/obs_sink.hpp"
#include "common/parallel.hpp"
#include "core/two_stage.hpp"
#include "hpc/dataset_cache.hpp"

namespace smart2 {
namespace {

CollectorConfig fast_collector() {
  CollectorConfig cfg;
  cfg.cycles_per_sample = 20'000;
  cfg.samples_per_run = 2;
  cfg.warmup_cycles = 20'000;
  return cfg;
}

/// Shared small profiled dataset. Built on first use, BEFORE any test
/// enables tracing, so corpus profiling never leaks spans into a test.
const Dataset& small_dataset() {
  static const Dataset d = [] {
    CorpusConfig corpus;
    corpus.scale = 0.04;  // ~145 apps
    return cached_hpc_dataset(corpus, fast_collector(), /*cache_dir=*/"");
  }();
  return d;
}

/// Enable the requested obs facilities for one test and restore the
/// disabled default (clearing all collected data) on scope exit.
class ObsGuard {
 public:
  explicit ObsGuard(bool trace, bool metrics) {
    obs::Config cfg;
    cfg.trace = trace;
    cfg.metrics = metrics;
    obs::configure(cfg);
    obs::reset();
  }
  ~ObsGuard() {
    obs::reset();
    obs::configure(obs::Config{});
  }

  ObsGuard(const ObsGuard&) = delete;
  ObsGuard& operator=(const ObsGuard&) = delete;
};

std::size_t count_substr(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size()))
    ++n;
  return n;
}

/// Number of span-typed trace lines for `name`. A plain substring count
/// would also match the histogram line of the same name.
std::size_t count_spans(const std::string& trace, const std::string& name) {
  std::size_t n = 0;
  std::size_t start = 0;
  while (start < trace.size()) {
    std::size_t end = trace.find('\n', start);
    if (end == std::string::npos) end = trace.size();
    const std::string line = trace.substr(start, end - start);
    if (line.rfind("{\"type\": \"span\"", 0) == 0 &&
        line.find("\"name\": \"" + name + "\"") != std::string::npos)
      ++n;
    start = end + 1;
  }
  return n;
}

// ----------------------------------------------------------- metrics ----

TEST(ObsMetricsTest, CounterAccumulatesAndClears) {
  const ObsGuard guard(/*trace=*/false, /*metrics=*/true);
  obs::Counter& c = obs::counter("cv.folds");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  obs::reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetricsTest, HistogramBucketEdges) {
  const ObsGuard guard(/*trace=*/false, /*metrics=*/true);
  obs::Histogram& h = obs::histogram("cv.run");
  h.observe_ns(0);                    // below the first edge
  h.observe_ns(999);                  // still bucket 0 (<1us)
  h.observe_ns(1'000);                // exactly an edge -> next bucket
  h.observe_ns(999'999);              // <1ms
  h.observe_ns(10'000'000'000ULL);    // >= last edge -> overflow bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.bucket(3), 1u);
  EXPECT_EQ(h.bucket(obs::Histogram::kBucketCount - 1), 1u);
  EXPECT_EQ(h.sum_ns(), 0 + 999 + 1'000 + 999'999 + 10'000'000'000ULL);
}

TEST(ObsMetricsTest, FineLayoutBucketGeometry) {
  using H = obs::Histogram;
  const H h(H::Layout::kFine);
  EXPECT_EQ(h.layout(), H::Layout::kFine);
  EXPECT_EQ(h.bucket_count(), H::kFineBucketCount);
  EXPECT_EQ(H::kFineBucketCount, 993u);

  // Exact region: one bucket per nanosecond below 32.
  EXPECT_EQ(h.bucket_index(0), 0u);
  EXPECT_EQ(h.bucket_index(31), 31u);
  EXPECT_EQ(h.bucket_edge(0), 1u);
  EXPECT_EQ(h.bucket_edge(31), 32u);
  // First octave [32, 64) still has width-1 buckets.
  EXPECT_EQ(h.bucket_index(32), 32u);
  EXPECT_EQ(h.bucket_index(63), 63u);
  EXPECT_EQ(h.bucket_edge(63), 64u);
  // Every bucket index is consistent with its edges: edge(b-1) <= ns <
  // edge(b) across octave boundaries.
  for (const std::uint64_t ns :
       {64ULL, 100ULL, 1'000ULL, 123'456ULL, 1'000'000ULL, 987'654'321ULL}) {
    const std::size_t b = h.bucket_index(ns);
    EXPECT_LT(ns, h.bucket_edge(b)) << ns;
    EXPECT_GE(ns, b == 0 ? 0 : h.bucket_edge(b - 1)) << ns;
    // <= ~3.2% relative resolution past the exact region (1/32 + rounding).
    if (ns >= 32) {
      const std::uint64_t lo = h.bucket_edge(b - 1);
      EXPECT_LE(h.bucket_edge(b) - lo, lo / 32 + 1) << ns;
    }
  }
  // Overflow bucket at 2^35 ns.
  EXPECT_EQ(h.bucket_index(1ULL << 35), H::kFineBucketCount - 1);
  EXPECT_EQ(h.bucket_index(~0ULL), H::kFineBucketCount - 1);
  EXPECT_EQ(h.bucket_edge(H::kFineBucketCount - 2), 1ULL << 35);
}

TEST(ObsMetricsTest, FineLayoutQuantilesDistinguishPercentiles) {
  using H = obs::Histogram;
  H h(H::Layout::kFine);
  // A latency-shaped distribution: a tight body with a sparse tail. A
  // decade histogram puts all 1000 observations below its first 1 us edge
  // or smears them over two buckets, reporting p50 == p99 == p999; fine
  // buckets must keep the percentiles apart and ordered.
  for (int i = 0; i < 990; ++i) h.observe_ns(200);
  for (int i = 0; i < 9; ++i) h.observe_ns(10'000);
  h.observe_ns(1'000'000);
  const std::uint64_t p50 = h.quantile_upper_ns(0.50);
  const std::uint64_t p99 = h.quantile_upper_ns(0.99);
  const std::uint64_t p999 = h.quantile_upper_ns(0.999);
  EXPECT_LT(p50, p99);
  EXPECT_LT(p99, p999);
  // Conservative upper bounds, within one bucket (~3%) of the truth.
  EXPECT_GE(p50, 200u);
  EXPECT_LE(p50, 208u);
  EXPECT_GE(p99, 10'000u);
  EXPECT_LE(p99, 10'320u);
  EXPECT_GE(p999, 1'000'000u);
  EXPECT_LE(p999, 1'032'000u);

  // The registry serves the catalog's fine layout for the serving latency
  // histogram (the name check_serving.py keys on).
  EXPECT_EQ(obs::histogram("serve.verdict.latency").layout(),
            H::Layout::kFine);
  // An already-registered name keeps its layout even if a call site asks
  // for another one.
  EXPECT_EQ(obs::histogram("cv.run", H::Layout::kFine).layout(),
            H::Layout::kDecade);
}

TEST(ObsMetricsTest, RegistrySnapshotsAreInsertionOrdered) {
  const ObsGuard guard(/*trace=*/false, /*metrics=*/true);
  // The pre-registered catalog pins the order of the well-known names;
  // ad-hoc names append after them in first-use order.
  obs::histogram("zz.custom");
  obs::histogram("aa.custom");
  const auto views = obs::histograms();
  ASSERT_GE(views.size(), 2u);
  EXPECT_STREQ(views[0].name, "phase.load");
  EXPECT_STREQ(views[views.size() - 2].name, "zz.custom");
  EXPECT_STREQ(views[views.size() - 1].name, "aa.custom");
}

// ------------------------------------------------------------- spans ----

TEST(ObsSpanTest, NestingProducesParentChildTree) {
  const ObsGuard guard(/*trace=*/true, /*metrics=*/true);
  {
    SMART2_SPAN("cv.run");
    { SMART2_SPAN("cv.fold"); }
    { SMART2_SPAN("cv.fold"); }
  }
  const std::string trace = obs::trace_to_json();
  EXPECT_NE(trace.find("\"id\": 1, \"parent\": 0, \"name\": \"cv.run\""),
            std::string::npos)
      << trace;
  EXPECT_NE(trace.find("\"id\": 2, \"parent\": 1, \"name\": \"cv.fold\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"id\": 3, \"parent\": 1, \"name\": \"cv.fold\""),
            std::string::npos);
  // Every span's duration also lands in the histogram of the same name.
  EXPECT_EQ(obs::histogram("cv.fold").count(), 2u);
  EXPECT_EQ(obs::histogram("cv.run").count(), 1u);
}

TEST(ObsSpanTest, DisabledObsBuffersNothing) {
  const ObsGuard guard(/*trace=*/false, /*metrics=*/false);
  { SMART2_SPAN("cv.run"); }
  EXPECT_EQ(obs::histogram("cv.run").count(), 0u);
  const std::string trace = obs::trace_to_json();
  EXPECT_EQ(trace.find("\"type\": \"span\""), std::string::npos);
}

TEST(ObsSpanTest, StripVolatileRemovesTimingAndEnv) {
  const ObsGuard guard(/*trace=*/true, /*metrics=*/true);
  { SMART2_SPAN("cv.run"); }
  const std::string trace = obs::trace_to_json();
  EXPECT_NE(trace.find("\"timing\""), std::string::npos);
  const std::string stripped = obs::strip_volatile(trace);
  EXPECT_EQ(stripped.find("\"timing\""), std::string::npos);
  EXPECT_EQ(stripped.find("\"env\""), std::string::npos);
  EXPECT_EQ(stripped.find("start_ns"), std::string::npos);
  EXPECT_NE(stripped.find("\"name\": \"cv.run\""), std::string::npos);
}

// ----------------------------------------------- parallel determinism ----

/// A workload that opens spans from inside a parallel fan-out, nested under
/// an ambient span.
std::string traced_parallel_run() {
  obs::reset();
  {
    SMART2_SPAN("cv.run");
    parallel::parallel_for(0, 8, [](std::size_t) { SMART2_SPAN("cv.fold"); });
  }
  return obs::strip_volatile(obs::trace_to_json());
}

TEST(ObsParallelTest, TraceIsIdenticalAcrossThreadCounts) {
  const ObsGuard guard(/*trace=*/true, /*metrics=*/true);
  parallel::set_thread_count(1);
  const std::string serial = traced_parallel_run();
  parallel::set_thread_count(2);
  const std::string two = traced_parallel_run();
  parallel::set_thread_count(4);
  const std::string four = traced_parallel_run();
  parallel::set_thread_count(0);  // restore the env-derived default
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, four);
  // All 8 fold spans re-parented to the ambient cv.run span (id 1).
  EXPECT_EQ(count_substr(four, "\"parent\": 1, \"name\": \"cv.fold\""), 8u);
}

TEST(ObsParallelTest, TwoStagePipelineTraceIsThreadCountIndependent) {
  (void)small_dataset();  // profile before tracing
  const ObsGuard guard(/*trace=*/true, /*metrics=*/true);

  TwoStageConfig cfg;
  cfg.stage2_model = "OneR";
  const auto run = [&] {
    obs::reset();
    TwoStageHmd hmd(cfg);
    hmd.train(small_dataset());
    (void)hmd.predict_batch(small_dataset());
    return obs::strip_volatile(obs::trace_to_json());
  };

  parallel::set_thread_count(1);
  const std::string serial = run();
  parallel::set_thread_count(4);
  const std::string four = run();
  parallel::set_thread_count(0);
  EXPECT_EQ(serial, four);
  EXPECT_NE(serial.find("\"name\": \"two_stage.train\""), std::string::npos);
  // predict_batch runs the epoch-batched SIMD path on a compiled pipeline.
  EXPECT_NE(serial.find("\"name\": \"stage1.mlr.predict_simd\""),
            std::string::npos);
}

TEST(ObsParallelTest, BatchDetectTraceIsThreadCountIndependent) {
  (void)small_dataset();  // profile before tracing
  const ObsGuard guard(/*trace=*/true, /*metrics=*/true);

  TwoStageConfig cfg;
  cfg.stage2_model = "OneR";
  TwoStageHmd hmd(cfg);
  hmd.train(small_dataset());

  // Cyclic-extend the profiled rows past several kDetectEpoch blocks so the
  // batched path actually fans epochs across the pool.
  Dataset big(small_dataset().feature_names(), small_dataset().class_names());
  const std::size_t target = 3 * TwoStageHmd::kDetectEpoch + 17;
  big.reserve(target);
  for (std::size_t i = 0; i < target; ++i) {
    const std::size_t src = i % small_dataset().size();
    big.add(small_dataset().features(src), small_dataset().label(src));
  }
  const std::size_t epochs =
      (big.size() + TwoStageHmd::kDetectEpoch - 1) / TwoStageHmd::kDetectEpoch;

  const auto run = [&] {
    obs::reset();
    (void)hmd.predict_batch(big);
    return obs::strip_volatile(obs::trace_to_json());
  };

  parallel::set_thread_count(1);
  const std::string serial = run();
  parallel::set_thread_count(2);
  const std::string two = run();
  parallel::set_thread_count(4);
  const std::string four = run();
  parallel::set_thread_count(0);
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, four);
  // One stage-1 batch span per epoch, merged in epoch order.
  EXPECT_EQ(count_spans(serial, "stage1.mlr.predict_simd"), epochs);
}

// ---------------------------------------------- stage-2 span regression --

TEST(ObsTwoStageTest, OneStage2SpanPerNonBenignStage1Verdict) {
  (void)small_dataset();
  const ObsGuard guard(/*trace=*/true, /*metrics=*/true);

  TwoStageConfig cfg;
  cfg.stage2_model = "OneR";
  TwoStageHmd hmd(cfg);
  hmd.train(small_dataset());

  obs::reset();  // drop the training spans; audit only the detect loop
  // Per-sample detect() so each stage-2 dispatch opens its own span (the
  // batched predict_batch path amortizes spans per epoch instead).
  std::vector<Detection> detections;
  for (std::size_t i = 0; i < small_dataset().size(); ++i)
    detections.push_back(hmd.detect(small_dataset().features(i)));
  ASSERT_EQ(detections.size(), small_dataset().size());

  // Recompute the expected routing from the model itself: a stage-2 span
  // happens exactly when stage 1 is not a confident benign.
  std::size_t expected_dispatches = 0;
  for (std::size_t i = 0; i < small_dataset().size(); ++i) {
    std::vector<double> common;
    for (std::size_t f : hmd.plan().common)
      common.push_back(small_dataset().features(i)[f]);
    const auto proba = hmd.stage1_proba(common);
    const std::size_t benign = static_cast<std::size_t>(
        label_of(AppClass::kBenign));
    bool is_best_benign = true;
    for (std::size_t k = 0; k < proba.size(); ++k)
      if (proba[k] > proba[benign]) is_best_benign = false;
    if (is_best_benign && proba[benign] >= cfg.benign_confidence) continue;
    ++expected_dispatches;
  }
  obs::counter("stage2.dispatch").clear();  // drop the recompute's side effects
  // (stage1_proba opens no spans/counters, but keep the audit explicit)

  const std::string trace = obs::trace_to_json();
  std::size_t stage2_spans = 0;
  for (const char* name :
       {"stage2.backdoor.predict_compiled", "stage2.rootkit.predict_compiled",
        "stage2.virus.predict_compiled", "stage2.trojan.predict_compiled"})
    stage2_spans += count_spans(trace, name);
  EXPECT_EQ(stage2_spans, expected_dispatches);
  EXPECT_EQ(count_spans(trace, "stage1.mlr.predict_compiled"),
            small_dataset().size());
}

// ------------------------------------------------------------ summary ----

TEST(ObsSummaryTest, RendersCountersAndHistograms) {
  const ObsGuard guard(/*trace=*/false, /*metrics=*/true);
  obs::counter("cv.folds").add(3);
  obs::histogram("cv.run").observe_ns(1'000'000);  // 1 ms
  obs::histogram("cv.run").observe_ns(2'000'000);  // 2 ms
  const std::string summary = obs::render_summary();
  EXPECT_EQ(summary.rfind("== smart2 obs summary ==\n", 0), 0u) << summary;
  EXPECT_NE(summary.find("cv.folds"), std::string::npos);
  EXPECT_NE(summary.find("3"), std::string::npos);
  EXPECT_NE(summary.find("cv.run"), std::string::npos);
  EXPECT_NE(summary.find("3.000"), std::string::npos);   // total ms
  EXPECT_NE(summary.find("1500.0"), std::string::npos);  // mean us
  EXPECT_NE(summary.find("<10ms"), std::string::npos);   // p95 bucket label
  // Zero-count entries never appear.
  EXPECT_EQ(summary.find("phase.load"), std::string::npos);
}

TEST(ObsSummaryTest, EmptyRegistryRendersPlaceholder) {
  const ObsGuard guard(/*trace=*/false, /*metrics=*/true);
  const std::string summary = obs::render_summary();
  EXPECT_NE(summary.find("(no observations)"), std::string::npos);
}

}  // namespace
}  // namespace smart2

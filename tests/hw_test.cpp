// Tests for src/hw: fixed-point formats, resource accounting, and the
// HLS-style classifier lowering (Table V's cost model).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "hw/fixed_point.hpp"
#include "hw/resource_model.hpp"
#include "hw/synth.hpp"
#include "ml/adaboost.hpp"
#include "ml/decision_tree.hpp"
#include "ml/logistic.hpp"
#include "ml/mlp.hpp"
#include "ml/onerule.hpp"
#include "ml/ripper.hpp"

namespace smart2 {
namespace {

Dataset blobs(std::size_t n_per_class, std::uint64_t seed,
              std::size_t dims = 4) {
  std::vector<std::string> names;
  for (std::size_t f = 0; f < dims; ++f)
    names.push_back("f" + std::to_string(f));
  Dataset d(std::move(names), {"neg", "pos"});
  Rng rng(seed);
  std::vector<double> x(dims);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (int cls = 0; cls < 2; ++cls) {
      for (std::size_t f = 0; f < dims; ++f)
        x[f] = rng.gaussian(f == 0 ? cls * 5.0 : 0.0, 1.0);
      d.add(x, cls);
    }
  }
  return d;
}

// --------------------------------------------------------- fixed point ---

TEST(FixedPointTest, WidthAndRange) {
  const FixedPointFormat q{10, 6};
  EXPECT_EQ(q.width(), 16);
  EXPECT_NEAR(q.max_value(), 512.0 - 1.0 / 64.0, 1e-12);
  EXPECT_NEAR(q.min_value(), -512.0, 1e-12);
}

TEST(FixedPointTest, RoundTripErrorBounded) {
  const FixedPointFormat q{10, 6};
  Rng rng(9);
  const double lsb = std::ldexp(1.0, -q.fraction_bits);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-500.0, 500.0);
    EXPECT_NEAR(q.round_trip(v), v, lsb / 2.0 + 1e-12);
  }
}

TEST(FixedPointTest, SaturatesOutOfRange) {
  const FixedPointFormat q{4, 4};
  EXPECT_DOUBLE_EQ(q.round_trip(1000.0), q.max_value());
  EXPECT_DOUBLE_EQ(q.round_trip(-1000.0), q.min_value());
}

TEST(FixedPointTest, NanQuantizesToZero) {
  const FixedPointFormat q{8, 8};
  EXPECT_EQ(q.quantize(std::nan("")), 0);
}

TEST(FixedPointTest, SaturatesToExactIntegerBounds) {
  // The quantized-domain bounds the overflow proof in ml/quantized.cpp
  // assumes: +max is 2^(w-1) - 1 codes, -max is -2^(w-1) codes.
  const FixedPointFormat q{4, 4};
  EXPECT_EQ(q.quantize(1e12), 127);
  EXPECT_EQ(q.quantize(-1e12), -128);
  EXPECT_EQ(q.quantize(std::numeric_limits<double>::infinity()), 127);
  EXPECT_EQ(q.quantize(-std::numeric_limits<double>::infinity()), -128);
  EXPECT_EQ(q.quantize(q.max_value()), 127);
  EXPECT_EQ(q.quantize(q.min_value()), -128);
}

TEST(FixedPointTest, RoundsHalfAwayFromZero) {
  // One fraction bit makes every x.25/x.75 a representable half-step: the
  // tie-break must move away from zero on both signs (llround semantics —
  // what the RTL constant tables were generated with).
  const FixedPointFormat q{4, 1};
  EXPECT_EQ(q.quantize(0.25), 1);
  EXPECT_EQ(q.quantize(-0.25), -1);
  EXPECT_EQ(q.quantize(0.75), 2);
  EXPECT_EQ(q.quantize(-0.75), -2);
  EXPECT_EQ(q.quantize(1.25), 3);
  EXPECT_EQ(q.quantize(-1.25), -3);
  // Non-ties still round to nearest.
  EXPECT_EQ(q.quantize(0.74), 1);
  EXPECT_EQ(q.quantize(-0.74), -1);
}

TEST(FixedPointTest, DegenerateWidthsStayConsistent) {
  // The narrowest format quantize() admits: sign + 1 integer bit + 1
  // fraction bit. Four codes: -2.0, -1.5 .. +1.5 in 0.5 steps.
  const FixedPointFormat q{2, 1};
  EXPECT_EQ(q.width(), 3);
  EXPECT_DOUBLE_EQ(q.max_value(), 1.5);
  EXPECT_DOUBLE_EQ(q.min_value(), -2.0);
  EXPECT_EQ(q.quantize(100.0), 3);
  EXPECT_EQ(q.quantize(-100.0), -4);
  EXPECT_EQ(q.quantize(0.0), 0);
  EXPECT_DOUBLE_EQ(q.round_trip(0.5), 0.5);
  EXPECT_DOUBLE_EQ(q.round_trip(-2.0), -2.0);

  // An all-fraction wide format keeps sub-unit resolution symmetric.
  const FixedPointFormat fine{2, 14};
  EXPECT_DOUBLE_EQ(fine.round_trip(0.5), 0.5);
  EXPECT_DOUBLE_EQ(fine.round_trip(-0.5), -0.5);
  EXPECT_EQ(fine.quantize(10.0), (1 << 15) - 1);
  EXPECT_EQ(fine.quantize(-10.0), -(1 << 15));
}

// ----------------------------------------------------------- resources ---

TEST(ResourcesTest, AdditionAndScaling) {
  Resources a{10, 5, 1, 0};
  const Resources b{20, 10, 0, 2};
  a += b;
  EXPECT_EQ(a.luts, 30u);
  EXPECT_EQ(a.brams, 2u);
  const Resources s = b.scaled(3);
  EXPECT_EQ(s.luts, 60u);
  EXPECT_EQ(s.brams, 6u);
}

TEST(ResourcesTest, LutEquivalentsWeighDspAndBram) {
  const Resources only_dsp{0, 0, 1, 0};
  const Resources only_lut{100, 0, 0, 0};
  EXPECT_GT(lut_equivalents(only_dsp), lut_equivalents(only_lut));
}

TEST(ResourcesTest, RelativeAreaOfReferenceIs100) {
  EXPECT_NEAR(relative_area_percent(kOpenSparcCore), 100.0, 1e-9);
}

TEST(ResourcesTest, ToStringContainsAllFields) {
  const std::string s = to_string(Resources{1, 2, 3, 4});
  EXPECT_NE(s.find("1 LUT"), std::string::npos);
  EXPECT_NE(s.find("3 DSP"), std::string::npos);
}

// ----------------------------------------------------------- synthesis ---

TEST(SynthTest, UntrainedClassifierThrows) {
  const HlsEstimator hls;
  OneR c;
  EXPECT_THROW(hls.synthesize(c), std::invalid_argument);
}

TEST(SynthTest, OneRIsSingleCycle) {
  const Dataset d = blobs(100, 31);
  OneR c;
  c.fit(d);
  const HwDesign design = HlsEstimator().synthesize(c);
  EXPECT_EQ(design.latency_cycles, 1u);
  EXPECT_GT(design.resources.luts, 0u);
  EXPECT_EQ(design.resources.dsps, 0u);
}

TEST(SynthTest, TreeLatencyEqualsDepth) {
  const Dataset d = blobs(150, 32);
  DecisionTree c;
  c.fit(d);
  const HwDesign design = HlsEstimator().synthesize(c);
  EXPECT_EQ(design.latency_cycles, c.depth());
}

TEST(SynthTest, CostOrderingMatchesTableV) {
  // OneR <= JRip <= J48 << MLP in both latency and area, and AdaBoost
  // multiplies its base. This is the qualitative content of Table V.
  const Dataset d = blobs(200, 33, 8);
  OneR oner;
  Ripper jrip;
  DecisionTree j48;
  Mlp::Params mp;
  mp.epochs = 30;
  Mlp mlp(mp);
  oner.fit(d);
  jrip.fit(d);
  j48.fit(d);
  mlp.fit(d);

  const HlsEstimator hls;
  const auto d_oner = hls.synthesize(oner);
  const auto d_jrip = hls.synthesize(jrip);
  const auto d_j48 = hls.synthesize(j48);
  const auto d_mlp = hls.synthesize(mlp);

  EXPECT_LE(d_oner.latency_cycles, d_jrip.latency_cycles);
  EXPECT_GT(d_mlp.latency_cycles, d_j48.latency_cycles);
  EXPECT_GT(d_mlp.area_percent, d_j48.area_percent);
  EXPECT_GT(d_mlp.area_percent, d_oner.area_percent);
  EXPECT_GT(d_mlp.resources.dsps, 0u);
}

TEST(SynthTest, BoostedDesignCostsMoreThanBase) {
  const Dataset d = blobs(150, 34);
  DecisionTree base;
  base.fit(d);
  AdaBoost::Params bp;
  bp.rounds = 10;
  AdaBoost boosted(std::make_unique<DecisionTree>(), bp);
  boosted.fit(d);

  const HlsEstimator hls;
  const auto d_base = hls.synthesize(base);
  const auto d_boost = hls.synthesize(boosted);
  EXPECT_GT(d_boost.latency_cycles, d_base.latency_cycles);
  EXPECT_GE(d_boost.area_percent, d_base.area_percent);
}

TEST(SynthTest, MlrHasMultipliersAndExpUnits) {
  const Dataset d = blobs(100, 35);
  LogisticRegression c;
  c.fit(d);
  const HwDesign design = HlsEstimator().synthesize(c);
  EXPECT_GT(design.resources.dsps, 0u);
  EXPECT_GT(design.latency_cycles, 1u);
}

TEST(SynthTest, FewerFeaturesShrinkTheDesign) {
  const Dataset d8 = blobs(200, 36, 8);
  std::vector<std::size_t> first4 = {0, 1, 2, 3};
  const Dataset d4 = d8.select_features(first4);
  Mlp::Params mp;
  mp.epochs = 20;
  Mlp wide(mp);
  Mlp narrow(mp);
  wide.fit(d8);
  narrow.fit(d4);
  const HlsEstimator hls;
  EXPECT_LT(hls.synthesize(narrow).area_percent,
            hls.synthesize(wide).area_percent);
  EXPECT_LE(hls.synthesize(narrow).latency_cycles,
            hls.synthesize(wide).latency_cycles);
}

TEST(SynthTest, InvalidMacColumnsThrows) {
  HlsParams p;
  p.mac_columns = 0;
  EXPECT_THROW(HlsEstimator{p}, std::invalid_argument);
}

// --------------------------------------------------------- quantization --

TEST(QuantizationTest, WideFormatPreservesDecisions) {
  const Dataset d = blobs(150, 37);
  DecisionTree c;
  c.fit(d);
  EXPECT_GT(quantized_agreement(c, d, FixedPointFormat{10, 12}), 0.98);
}

TEST(QuantizationTest, NarrowFormatDegrades) {
  const Dataset d = blobs(150, 38);
  Mlp::Params mp;
  mp.epochs = 40;
  Mlp c(mp);
  c.fit(d);
  const double wide = quantized_agreement(c, d, FixedPointFormat{8, 12});
  const double narrow = quantized_agreement(c, d, FixedPointFormat{2, 1});
  EXPECT_LE(narrow, wide + 1e-12);
}

TEST(QuantizationTest, EmptyDatasetIsPerfectAgreement) {
  Dataset empty({"f"}, {"a", "b"});
  OneR c;
  // Untrained + empty: agreement defined as 1.0 without touching the model.
  EXPECT_DOUBLE_EQ(quantized_agreement(c, empty, FixedPointFormat{8, 8}),
                   1.0);
}

}  // namespace
}  // namespace smart2

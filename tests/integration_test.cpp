// End-to-end integration: corpus -> HPC profiling -> feature reduction ->
// two-stage training -> evaluation -> hardware synthesis. Exercises the
// same path the benches use, at a reduced scale.
#include <gtest/gtest.h>

#include "core/runtime_monitor.hpp"
#include "core/single_stage.hpp"
#include "core/two_stage.hpp"
#include "hpc/dataset_cache.hpp"
#include "hw/synth.hpp"
#include "workload/appmodels.hpp"

namespace smart2 {
namespace {

struct Pipeline {
  Dataset train;
  Dataset test;
};

const Pipeline& pipeline() {
  static const Pipeline p = [] {
    CorpusConfig corpus;
    corpus.scale = 0.06;  // ~220 apps
    CollectorConfig coll;
    coll.cycles_per_sample = 30'000;
    coll.samples_per_run = 2;
    coll.warmup_cycles = 30'000;
    const Dataset d = cached_hpc_dataset(corpus, coll, /*cache_dir=*/"");
    Rng rng(2026);
    auto [train, test] = d.stratified_split(0.6, rng);
    return Pipeline{std::move(train), std::move(test)};
  }();
  return p;
}

TEST(IntegrationTest, SplitFollowsPaperProtocol) {
  const auto& p = pipeline();
  const double frac = static_cast<double>(p.train.size()) /
                      static_cast<double>(p.train.size() + p.test.size());
  EXPECT_NEAR(frac, 0.6, 0.02);
}

TEST(IntegrationTest, TwoStageBeatsStage1Alone) {
  const auto& p = pipeline();

  TwoStageConfig cfg;
  cfg.stage2_features = Stage2Features::kCommon4;
  cfg.boost = true;
  TwoStageHmd hmd(cfg);
  hmd.train(p.train);
  const TwoStageEval two = evaluate_two_stage(hmd, p.test);

  // Stage-1-only baseline: MLR's binarized decision, scored per class on
  // the same {Benign, class} subsets the two-stage numbers use (Fig. 5a).
  const auto& stage1 = hmd.stage1();
  double mean_two = 0.0;
  double mean_stage1 = 0.0;
  for (std::size_t m = 0; m < kNumMalwareClasses; ++m) {
    const int positive = label_of(kMalwareClasses[m]);
    std::vector<int> labels;
    std::vector<int> pred;
    for (std::size_t i = 0; i < p.test.size(); ++i) {
      if (p.test.label(i) != positive && p.test.label(i) != 0) continue;
      std::vector<double> common;
      for (std::size_t f : hmd.plan().common)
        common.push_back(p.test.features(i)[f]);
      labels.push_back(p.test.label(i) == positive ? 1 : 0);
      pred.push_back(stage1.predict(common) == 0 ? 0 : 1);
    }
    const auto cm = confusion(labels, pred, 2);
    mean_stage1 += cm.f_measure(1) / kNumMalwareClasses;
    mean_two += two.per_class[m].f_measure / kNumMalwareClasses;
  }

  // The paper's Fig. 5a shape: specialized second stage raises per-class F
  // over the stage-1-only detector (tolerance for the reduced corpus).
  EXPECT_GT(mean_two, mean_stage1 - 0.03);
}

TEST(IntegrationTest, SpecializedBeatsGeneralSingleStage) {
  const auto& p = pipeline();

  TwoStageConfig cfg;
  cfg.stage2_features = Stage2Features::kCommon4;
  cfg.boost = true;
  TwoStageHmd hmd(cfg);
  hmd.train(p.train);
  const TwoStageEval two = evaluate_two_stage(hmd, p.test);

  SingleStageConfig scfg;
  scfg.model = "J48";
  scfg.num_features = 4;
  SingleStageHmd single(scfg);
  single.train(p.train);
  const SingleStageEval sev = evaluate_single_stage(single, p.test);

  double mean_two = 0.0;
  double mean_single = 0.0;
  for (std::size_t m = 0; m < kNumMalwareClasses; ++m) {
    mean_two += two.per_class[m].f_measure;
    mean_single += sev.per_class[m].f_measure;
  }
  // Fig. 5b shape: 2SMaRT-4HPC >= general single-stage 4HPC (tolerance for
  // the reduced corpus).
  EXPECT_GT(mean_two, mean_single - 0.08);
}

TEST(IntegrationTest, TrainedDetectorsSynthesizeToHardware) {
  const auto& p = pipeline();
  TwoStageConfig cfg;
  cfg.stage2_model = "J48";
  TwoStageHmd hmd(cfg);
  hmd.train(p.train);

  const HlsEstimator hls;
  const HwDesign stage1 = hls.synthesize(hmd.stage1());
  EXPECT_GT(stage1.area_percent, 0.0);
  for (AppClass c : kMalwareClasses) {
    const HwDesign d = hls.synthesize(hmd.stage2(c));
    EXPECT_GT(d.latency_cycles, 0u);
    EXPECT_GT(d.area_percent, 0.0);
    EXPECT_LT(d.area_percent, 100.0);  // detectors are tiny vs a core
  }
}

TEST(IntegrationTest, MonitorClassifiesFreshApps) {
  const auto& p = pipeline();
  TwoStageConfig cfg;
  cfg.stage2_features = Stage2Features::kCommon4;
  cfg.boost = true;
  TwoStageHmd hmd(cfg);
  hmd.train(p.train);

  CollectorConfig coll;
  coll.cycles_per_sample = 30'000;
  coll.samples_per_run = 2;
  coll.warmup_cycles = 30'000;
  const RuntimeMonitor monitor(hmd, HpcCollector(coll));

  // Fresh apps never seen during training.
  Rng rng(777);
  int malware_flagged = 0;
  int benign_flagged = 0;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    AppSpec mal;
    mal.profile = sample_profile(kMalwareClasses[i % 4], rng);
    mal.app_seed = rng.next_u64();
    if (monitor.scan(mal).detection.is_malware) ++malware_flagged;

    AppSpec ben;
    ben.profile = sample_profile(AppClass::kBenign, rng);
    ben.app_seed = rng.next_u64();
    if (monitor.scan(ben).detection.is_malware) ++benign_flagged;
  }
  // Better than chance on both sides.
  EXPECT_GT(malware_flagged, n / 2);
  EXPECT_LT(benign_flagged, n / 2);
}

}  // namespace
}  // namespace smart2

// Tests for src/hpc: the PMU register constraint, multiplexing, the
// multi-run collector, and the dataset cache.
#include <gtest/gtest.h>

#include <filesystem>

#include "common/csv.hpp"
#include "hpc/collector.hpp"
#include "hpc/dataset_cache.hpp"
#include "hpc/pmu.hpp"
#include "workload/appmodels.hpp"

namespace smart2 {
namespace {

CollectorConfig fast_config() {
  CollectorConfig cfg;
  cfg.cycles_per_sample = 20'000;
  cfg.samples_per_run = 2;
  cfg.warmup_cycles = 10'000;
  return cfg;
}

AppSpec test_app(AppClass cls = AppClass::kBenign, std::uint64_t seed = 5) {
  Rng rng(seed);
  AppSpec app;
  app.profile = sample_profile(cls, rng);
  app.app_seed = rng.next_u64();
  return app;
}

// ----------------------------------------------------------------- pmu ---

TEST(PmuTest, RejectsOversizedGroup) {
  Pmu pmu(4);
  std::vector<Event> five = {Event::kCycles, Event::kInstructions,
                             Event::kBranchInstructions, Event::kBranchMisses,
                             Event::kCacheReferences};
  EXPECT_THROW(pmu.add_group(five), std::invalid_argument);
}

TEST(PmuTest, RejectsEmptyGroup) {
  Pmu pmu(4);
  EXPECT_THROW(pmu.add_group({}), std::invalid_argument);
}

TEST(PmuTest, ZeroRegistersThrows) {
  EXPECT_THROW(Pmu(0), std::invalid_argument);
}

TEST(PmuTest, RunWithoutGroupsThrows) {
  Pmu pmu(4);
  Rng rng(1);
  auto prof = sample_profile(AppClass::kBenign, rng);
  WorkloadGenerator gen(prof, 2);
  CoreModel core;
  EXPECT_THROW(pmu.run(gen, core, 1000, 100), std::logic_error);
}

TEST(PmuTest, SingleGroupCountsExactly) {
  Pmu pmu(4);
  pmu.add_group({Event::kInstructions, Event::kBranchInstructions});
  Rng rng(3);
  auto prof = sample_profile(AppClass::kBenign, rng);
  WorkloadGenerator gen(prof, 4);
  CoreModel core;
  pmu.run(gen, core, 20'000, 1'000);
  // One group is always scheduled: raw == scaled == core truth.
  EXPECT_EQ(pmu.raw_count(Event::kInstructions),
            core.counters()[event_index(Event::kInstructions)]);
  EXPECT_DOUBLE_EQ(pmu.scaled_count(Event::kInstructions),
                   static_cast<double>(pmu.raw_count(Event::kInstructions)));
  EXPECT_DOUBLE_EQ(pmu.running_fraction(Event::kInstructions), 1.0);
}

TEST(PmuTest, MultiplexedScalingApproximatesTruth) {
  Pmu pmu(2);
  pmu.add_group({Event::kInstructions});
  pmu.add_group({Event::kBranchInstructions});
  Rng rng(5);
  auto prof = sample_profile(AppClass::kBenign, rng);
  WorkloadGenerator gen(prof, 6);
  CoreModel core;
  pmu.run(gen, core, 200'000, 2'000);

  const double truth = static_cast<double>(
      core.counters()[event_index(Event::kInstructions)]);
  const double scaled = pmu.scaled_count(Event::kInstructions);
  EXPECT_NEAR(scaled / truth, 1.0, 0.15);
  EXPECT_NEAR(pmu.running_fraction(Event::kInstructions), 0.5, 0.1);
}

TEST(PmuTest, UnprogrammedEventThrows) {
  Pmu pmu(2);
  pmu.add_group({Event::kInstructions});
  EXPECT_THROW(pmu.raw_count(Event::kCycles), std::invalid_argument);
  EXPECT_THROW(pmu.scaled_count(Event::kCycles), std::invalid_argument);
}

TEST(PmuTest, ResetClearsCounts) {
  Pmu pmu(2);
  pmu.add_group({Event::kInstructions});
  Rng rng(7);
  auto prof = sample_profile(AppClass::kBenign, rng);
  WorkloadGenerator gen(prof, 8);
  CoreModel core;
  pmu.run(gen, core, 5'000, 1'000);
  pmu.reset();
  EXPECT_EQ(pmu.raw_count(Event::kInstructions), 0u);
}

// ----------------------------------------------------------- collector ---

TEST(CollectorTest, BatchCountMatchesRegisters) {
  CollectorConfig cfg = fast_config();
  cfg.registers = 4;
  EXPECT_EQ(HpcCollector(cfg).batches_for_all_events(), 11u);
  cfg.registers = 8;
  EXPECT_EQ(HpcCollector(cfg).batches_for_all_events(), 6u);
  cfg.registers = 2;
  EXPECT_EQ(HpcCollector(cfg).batches_for_all_events(), 22u);
}

TEST(CollectorTest, SingleRunRespectsRegisterLimit) {
  const HpcCollector coll(fast_config());
  const AppSpec app = test_app();
  std::vector<Event> five = {Event::kCycles, Event::kInstructions,
                             Event::kBranchInstructions, Event::kBranchMisses,
                             Event::kCacheReferences};
  EXPECT_THROW(coll.collect_single_run(app, five), std::invalid_argument);
}

TEST(CollectorTest, SingleRunIsDeterministic) {
  const HpcCollector coll(fast_config());
  const AppSpec app = test_app();
  const std::vector<Event> events = {Event::kInstructions,
                                     Event::kBranchInstructions};
  const auto a = coll.collect_single_run(app, events, 0);
  const auto b = coll.collect_single_run(app, events, 0);
  EXPECT_EQ(a, b);
}

TEST(CollectorTest, DifferentRunsDiffer) {
  const HpcCollector coll(fast_config());
  const AppSpec app = test_app();
  const std::vector<Event> events = {Event::kInstructions};
  const auto a = coll.collect_single_run(app, events, 0);
  const auto b = coll.collect_single_run(app, events, 1);
  EXPECT_NE(a[0], b[0]);  // fresh container, fresh stream
}

TEST(CollectorTest, AllEventsProducesFullVector) {
  const HpcCollector coll(fast_config());
  const AppSpec app = test_app();
  const auto features = coll.collect_all_events(app);
  ASSERT_EQ(features.size(), kNumEvents);
  EXPECT_GT(features[event_index(Event::kInstructions)], 0.0);
  EXPECT_GT(features[event_index(Event::kCycles)], 0.0);
}

TEST(CollectorTest, MultiplexedApproximatesMultiRun) {
  const HpcCollector coll(fast_config());
  const AppSpec app = test_app(AppClass::kBenign, 21);
  const auto multi = coll.collect_all_events(app);
  const auto mux = coll.collect_multiplexed(app);
  // Multiplexing introduces sampling error but instructions-per-window
  // should agree within ~40%.
  const double a = multi[event_index(Event::kInstructions)];
  const double b = mux[event_index(Event::kInstructions)];
  EXPECT_GT(b, 0.0);
  EXPECT_NEAR(b / a, 1.0, 0.4);
}

TEST(CollectorTest, TraceHasRequestedShape) {
  const HpcCollector coll(fast_config());
  const AppSpec app = test_app();
  const std::vector<Event> events = {Event::kBranchInstructions,
                                     Event::kBranchMisses};
  const auto trace = coll.trace(app, events, 7);
  ASSERT_EQ(trace.size(), 7u);
  for (const auto& row : trace) EXPECT_EQ(row.size(), 2u);
}

TEST(CollectorTest, InvalidConfigThrows) {
  CollectorConfig cfg = fast_config();
  cfg.registers = 0;
  EXPECT_THROW(HpcCollector{cfg}, std::invalid_argument);
  cfg = fast_config();
  cfg.samples_per_run = 0;
  EXPECT_THROW(HpcCollector{cfg}, std::invalid_argument);
}

TEST(CollectorTest, DatasetHasLabelsAndNames) {
  CorpusConfig corpus_cfg;
  corpus_cfg.scale = 0.0;  // minimum: 8 per class
  const auto corpus = build_corpus(corpus_cfg);
  const HpcCollector coll(fast_config());
  const Dataset d = build_hpc_dataset(corpus, coll);
  EXPECT_EQ(d.size(), corpus.size());
  EXPECT_EQ(d.feature_count(), kNumEvents);
  EXPECT_EQ(d.class_count(), kNumAppClasses);
  EXPECT_EQ(d.feature_names()[event_index(Event::kNodeStores)],
            "node-stores");
  const auto hist = d.class_histogram();
  for (std::size_t c = 0; c < kNumAppClasses; ++c) EXPECT_GE(hist[c], 8u);
}

// -------------------------------------------------------- dataset cache --

TEST(DatasetCacheTest, CsvRoundTrip) {
  Dataset d({"a", "b"}, {"x", "y", "z"});
  d.add(std::vector<double>{1.5, -2.25}, 0);
  d.add(std::vector<double>{3.125, 4.0}, 2);
  const std::string path =
      (std::filesystem::temp_directory_path() / "smart2_ds_test.csv").string();
  save_dataset_csv(path, d);
  const Dataset back = load_dataset_csv(path);
  ASSERT_EQ(back.size(), d.size());
  EXPECT_EQ(back.feature_names(), d.feature_names());
  EXPECT_EQ(back.class_names(), d.class_names());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(back.label(i), d.label(i));
    for (std::size_t f = 0; f < d.feature_count(); ++f)
      EXPECT_DOUBLE_EQ(back.features(i)[f], d.features(i)[f]);
  }
  std::filesystem::remove(path);
}

TEST(DatasetCacheTest, LoadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "smart2_bad.csv").string();
  csv::write_file(path, {{"not", "a", "dataset"}});
  EXPECT_THROW(load_dataset_csv(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(DatasetCacheTest, FingerprintChangesWithConfig) {
  CorpusConfig corpus;
  CollectorConfig coll;
  const auto base = dataset_fingerprint(corpus, coll);
  corpus.scale = 0.5;
  EXPECT_NE(dataset_fingerprint(corpus, coll), base);
  corpus.scale = 1.0;
  coll.registers = 8;
  EXPECT_NE(dataset_fingerprint(corpus, coll), base);
}

TEST(DatasetCacheTest, CachedDatasetHitsDisk) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "smart2_cache_test").string();
  std::filesystem::remove_all(dir);
  CorpusConfig corpus;
  corpus.scale = 0.0;  // minimal corpus
  const CollectorConfig coll = fast_config();
  const Dataset first = cached_hpc_dataset(corpus, coll, dir);
  const Dataset second = cached_hpc_dataset(corpus, coll, dir);  // from disk
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(first.label(i), second.label(i));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace smart2

// Tests for src/workload: the generator, class models, and corpus builder.
#include <gtest/gtest.h>

#include <map>

#include "uarch/core.hpp"
#include "workload/appmodels.hpp"
#include "workload/corpus.hpp"
#include "workload/generator.hpp"

namespace smart2 {
namespace {

BehaviorProfile simple_profile() {
  BehaviorProfile prof;
  prof.name = "test";
  prof.app_class = AppClass::kBenign;
  Phase p;
  p.branch_frac = 0.2;
  p.load_frac = 0.3;
  p.store_frac = 0.1;
  p.prefetch_frac = 0.05;
  prof.phases.push_back(p);
  return prof;
}

TEST(GeneratorTest, EmptyProfileThrows) {
  BehaviorProfile empty;
  EXPECT_THROW(WorkloadGenerator(empty, 1), std::invalid_argument);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  const auto prof = simple_profile();
  WorkloadGenerator a(prof, 42);
  WorkloadGenerator b(prof, 42);
  for (int i = 0; i < 1000; ++i) {
    const MicroOp oa = a.next();
    const MicroOp ob = b.next();
    EXPECT_EQ(static_cast<int>(oa.kind), static_cast<int>(ob.kind));
    EXPECT_EQ(oa.iaddr, ob.iaddr);
    EXPECT_EQ(oa.daddr, ob.daddr);
    EXPECT_EQ(oa.taken, ob.taken);
  }
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentStreams) {
  const auto prof = simple_profile();
  WorkloadGenerator a(prof, 1);
  WorkloadGenerator b(prof, 2);
  int differences = 0;
  for (int i = 0; i < 200; ++i)
    if (a.next().daddr != b.next().daddr) ++differences;
  EXPECT_GT(differences, 10);
}

TEST(GeneratorTest, InstructionMixMatchesProfile) {
  const auto prof = simple_profile();
  WorkloadGenerator gen(prof, 7);
  std::map<MicroOp::Kind, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[gen.next().kind];
  EXPECT_NEAR(counts[MicroOp::Kind::kBranch] / double(n), 0.2, 0.02);
  EXPECT_NEAR(counts[MicroOp::Kind::kLoad] / double(n), 0.3, 0.02);
  EXPECT_NEAR(counts[MicroOp::Kind::kStore] / double(n), 0.1, 0.02);
  EXPECT_NEAR(counts[MicroOp::Kind::kPrefetch] / double(n), 0.05, 0.01);
}

TEST(GeneratorTest, MemoryOpsCarryDataAddresses) {
  const auto prof = simple_profile();
  WorkloadGenerator gen(prof, 8);
  for (int i = 0; i < 1000; ++i) {
    const MicroOp op = gen.next();
    if (op.kind == MicroOp::Kind::kLoad ||
        op.kind == MicroOp::Kind::kStore) {
      EXPECT_NE(op.daddr, 0u);
    }
    EXPECT_NE(op.iaddr, 0u);
  }
}

TEST(GeneratorTest, RunCyclesAdvancesAtLeastRequested) {
  const auto prof = simple_profile();
  WorkloadGenerator gen(prof, 9);
  CoreModel core;
  const auto before = core.cycles();
  run_cycles(gen, core, 5000);
  EXPECT_GE(core.cycles() - before, 5000u);
}

TEST(GeneratorTest, RunOpsExecutesExactCount) {
  const auto prof = simple_profile();
  WorkloadGenerator gen(prof, 10);
  CoreModel core;
  run_ops(gen, core, 1234);
  EXPECT_EQ(core.counters()[event_index(Event::kInstructions)], 1234u);
}

// ----------------------------------------------------------- appmodels ---

class AppModelTest : public ::testing::TestWithParam<AppClass> {};

TEST_P(AppModelTest, ProfilesAreWellFormed) {
  Rng rng(55);
  for (int i = 0; i < 50; ++i) {
    const BehaviorProfile prof = sample_profile(GetParam(), rng);
    EXPECT_EQ(prof.app_class, GetParam());
    ASSERT_FALSE(prof.phases.empty());
    for (const Phase& p : prof.phases) {
      const double mix =
          p.branch_frac + p.load_frac + p.store_frac + p.prefetch_frac;
      EXPECT_GE(p.branch_frac, 0.0);
      EXPECT_LE(mix, 1.0);
      EXPECT_LE(p.hot_frac + p.warm_frac, 1.0);
      EXPECT_GE(p.hot_code_frac, 0.0);
      EXPECT_LE(p.hot_code_frac, 1.0);
      EXPECT_GE(p.branch_noise, 0.0);
      EXPECT_LE(p.branch_noise, 1.0);
      EXPECT_GT(p.weight, 0.0);
    }
  }
}

TEST_P(AppModelTest, ProfilesExecuteWithoutIncident) {
  Rng rng(56);
  const BehaviorProfile prof = sample_profile(GetParam(), rng);
  WorkloadGenerator gen(prof, 77);
  CoreModel core;
  run_ops(gen, core, 20000);
  const auto& c = core.counters();
  EXPECT_EQ(c[event_index(Event::kInstructions)], 20000u);
  EXPECT_GT(c[event_index(Event::kBranchInstructions)], 0u);
  EXPECT_GT(c[event_index(Event::kL1DcacheLoads)], 0u);
}

INSTANTIATE_TEST_SUITE_P(AllClasses, AppModelTest,
                         ::testing::Values(AppClass::kBenign,
                                           AppClass::kBackdoor,
                                           AppClass::kRootkit,
                                           AppClass::kVirus,
                                           AppClass::kTrojan),
                         [](const ::testing::TestParamInfo<AppClass>& param_info) {
                           return std::string(to_string(param_info.param));
                         });

TEST(AppModelTest, MalwareHasCamouflagePhase) {
  Rng rng(57);
  const auto prof = sample_profile(AppClass::kTrojan, rng);
  EXPECT_EQ(prof.phases.size(), 2u);
}

TEST(AppModelTest, BenignArchetypesDiffer) {
  Rng rng(58);
  const auto compute = sample_benign(BenignArchetype::kComputeKernel, rng);
  const auto browser = sample_benign(BenignArchetype::kBrowser, rng);
  // Browsers have a much larger code footprint than compute kernels.
  EXPECT_GT(browser.phases[0].code_kb, compute.phases[0].code_kb);
}

// -------------------------------------------------------------- corpus ---

TEST(CorpusTest, PaperClassCountsAtFullScale) {
  CorpusConfig cfg;
  cfg.scale = 1.0;
  const auto corpus = build_corpus(cfg);
  std::map<AppClass, std::size_t> counts;
  for (const auto& app : corpus) ++counts[app.profile.app_class];
  EXPECT_EQ(counts[AppClass::kBackdoor], 452u);
  EXPECT_EQ(counts[AppClass::kRootkit], 350u);
  EXPECT_EQ(counts[AppClass::kVirus], 650u);
  EXPECT_EQ(counts[AppClass::kTrojan], 1169u);
  EXPECT_EQ(counts[AppClass::kBenign], 1000u);
  EXPECT_GT(corpus.size(), 3000u);  // ">3000 applications"
}

TEST(CorpusTest, ScaleShrinksButKeepsMinimum) {
  CorpusConfig cfg;
  cfg.scale = 0.01;
  const auto corpus = build_corpus(cfg);
  std::map<AppClass, std::size_t> counts;
  for (const auto& app : corpus) ++counts[app.profile.app_class];
  for (const auto& [cls, n] : counts) EXPECT_GE(n, 8u) << to_string(cls);
}

TEST(CorpusTest, DeterministicForSeed) {
  CorpusConfig cfg;
  cfg.scale = 0.02;
  const auto a = build_corpus(cfg);
  const auto b = build_corpus(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].app_seed, b[i].app_seed);
    EXPECT_EQ(a[i].profile.app_class, b[i].profile.app_class);
  }
}

TEST(CorpusTest, DifferentSeedDifferentApps) {
  CorpusConfig a_cfg;
  a_cfg.scale = 0.02;
  CorpusConfig b_cfg = a_cfg;
  b_cfg.seed = 777;
  const auto a = build_corpus(a_cfg);
  const auto b = build_corpus(b_cfg);
  EXPECT_NE(a[0].app_seed, b[0].app_seed);
}

TEST(CorpusTest, ScaledCountHelper) {
  EXPECT_EQ(scaled_count(100, 1.0), 100u);
  EXPECT_EQ(scaled_count(100, 0.5), 50u);
  EXPECT_EQ(scaled_count(100, 0.0), 8u);  // floor
}

}  // namespace
}  // namespace smart2

// Tests for smart2::simd and the eval_batch kernels built on it.
//
// Two layers: (1) the portable VecD wrappers must equal the scalar IEEE-754
// operation lane by lane (including NaN compare semantics and the bit
// layout of masks); (2) predict_proba_batch_into must be bit-identical to
// the per-sample predict_proba_into for every compiled model, at every
// batch size that exercises a remainder tail, in both the native-ISA and
// the runtime-forced scalar mode, through special values (NaN / ±inf) and
// through serialize -> load -> compile round trips.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/simd.hpp"
#include "data/dataset.hpp"
#include "ml/adaboost.hpp"
#include "ml/bagging.hpp"
#include "ml/compiled.hpp"
#include "ml/decision_tree.hpp"
#include "ml/logistic.hpp"
#include "ml/mlp.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/onerule.hpp"
#include "ml/ripper.hpp"
#include "ml/serialize.hpp"

namespace smart2 {
namespace {

/// Restore the runtime SIMD mode (which the env may have forced) on exit.
class ScalarModeGuard {
 public:
  ScalarModeGuard() : saved_(simd::scalar_forced()) {}
  ~ScalarModeGuard() { simd::force_scalar(saved_); }

  ScalarModeGuard(const ScalarModeGuard&) = delete;
  ScalarModeGuard& operator=(const ScalarModeGuard&) = delete;

 private:
  bool saved_;
};

/// Route FlatTree batches through the lockstep kernel for the guarded
/// scope (default dispatch picks the per-row loop; see compiled.hpp).
class TreeLockstepGuard {
 public:
  TreeLockstepGuard() : saved_(compiled::tree_lockstep_enabled()) {
    compiled::set_tree_lockstep(true);
  }
  ~TreeLockstepGuard() { compiled::set_tree_lockstep(saved_); }

  TreeLockstepGuard(const TreeLockstepGuard&) = delete;
  TreeLockstepGuard& operator=(const TreeLockstepGuard&) = delete;

 private:
  bool saved_;
};

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// ------------------------------------------------------ wrapper lane ops --

/// Lane inputs covering signs, magnitudes, denormals, and exact zero.
const double kLaneA[4] = {1.5, -2.25, 5e-324, 0.0};
const double kLaneB[4] = {-0.5, 3.75, 1e308, -0.0};

TEST(SimdWrapperTest, ArithmeticMatchesScalarLanewise) {
  const simd::VecD a = simd::vload(kLaneA);
  const simd::VecD b = simd::vload(kLaneB);
  double add[simd::kLanes], sub[simd::kLanes];
  double mul[simd::kLanes], div[simd::kLanes];
  simd::vstore(add, simd::vadd(a, b));
  simd::vstore(sub, simd::vsub(a, b));
  simd::vstore(mul, simd::vmul(a, b));
  simd::vstore(div, simd::vdiv(a, b));
  for (std::size_t l = 0; l < simd::kLanes; ++l) {
    EXPECT_EQ(bits(add[l]), bits(kLaneA[l] + kLaneB[l])) << "lane " << l;
    EXPECT_EQ(bits(sub[l]), bits(kLaneA[l] - kLaneB[l])) << "lane " << l;
    EXPECT_EQ(bits(mul[l]), bits(kLaneA[l] * kLaneB[l])) << "lane " << l;
    EXPECT_EQ(bits(div[l]), bits(kLaneA[l] / kLaneB[l])) << "lane " << l;
  }
}

TEST(SimdWrapperTest, BroadcastAndZeroFillEveryLane) {
  double bc[simd::kLanes], z[simd::kLanes];
  simd::vstore(bc, simd::vbroadcast(-7.5));
  simd::vstore(z, simd::vzero());
  for (std::size_t l = 0; l < simd::kLanes; ++l) {
    EXPECT_EQ(bits(bc[l]), bits(-7.5));
    EXPECT_EQ(bits(z[l]), bits(0.0));
  }
}

TEST(SimdWrapperTest, ComparesProduceAllOnesOrAllZeroMasks) {
  const simd::VecD a = simd::vload(kLaneA);
  const simd::VecD b = simd::vload(kLaneB);
  double le[simd::kLanes], ge[simd::kLanes], eq[simd::kLanes];
  simd::vstore(le, simd::vle(a, b));
  simd::vstore(ge, simd::vge(a, b));
  simd::vstore(eq, simd::veq(a, a));
  const std::uint64_t ones = ~std::uint64_t{0};
  for (std::size_t l = 0; l < simd::kLanes; ++l) {
    EXPECT_EQ(bits(le[l]), kLaneA[l] <= kLaneB[l] ? ones : 0u) << "lane " << l;
    EXPECT_EQ(bits(ge[l]), kLaneA[l] >= kLaneB[l] ? ones : 0u) << "lane " << l;
    EXPECT_EQ(bits(eq[l]), ones);
  }
}

TEST(SimdWrapperTest, ComparesAreFalseForNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const simd::VecD a = simd::vbroadcast(nan);
  const simd::VecD b = simd::vbroadcast(1.0);
  double le[simd::kLanes], ge[simd::kLanes], eq[simd::kLanes];
  simd::vstore(le, simd::vle(a, b));
  simd::vstore(ge, simd::vge(a, b));
  simd::vstore(eq, simd::veq(a, a));
  for (std::size_t l = 0; l < simd::kLanes; ++l) {
    EXPECT_EQ(bits(le[l]), 0u);  // NaN <= x is false, like the scalar op
    EXPECT_EQ(bits(ge[l]), 0u);
    EXPECT_EQ(bits(eq[l]), 0u);  // NaN != NaN
  }
}

TEST(SimdWrapperTest, MaskLogicAndBlendSelectLanes) {
  const simd::VecD a = simd::vload(kLaneA);
  const simd::VecD b = simd::vload(kLaneB);
  const simd::VecD mask = simd::vle(a, b);  // lane-dependent mask
  double blend[simd::kLanes];
  simd::vstore(blend, simd::vblend(mask, a, b));
  for (std::size_t l = 0; l < simd::kLanes; ++l)
    EXPECT_EQ(bits(blend[l]),
              kLaneA[l] <= kLaneB[l] ? bits(kLaneA[l]) : bits(kLaneB[l]))
        << "lane " << l;

  const std::uint64_t ones = ~std::uint64_t{0};
  double band[simd::kLanes], bor[simd::kLanes], bandnot[simd::kLanes];
  const simd::VecD all = simd::veq(a, a);
  simd::vstore(band, simd::vand(mask, all));
  simd::vstore(bor, simd::vor(mask, all));
  simd::vstore(bandnot, simd::vandnot(mask, all));
  for (std::size_t l = 0; l < simd::kLanes; ++l) {
    const std::uint64_t m = kLaneA[l] <= kLaneB[l] ? ones : 0u;
    EXPECT_EQ(bits(band[l]), m);
    EXPECT_EQ(bits(bor[l]), ones);
    EXPECT_EQ(bits(bandnot[l]), ~m);
  }
}

TEST(SimdWrapperTest, MovemaskAllAnyReflectLaneMasks) {
  const simd::VecD a = simd::vload(kLaneA);
  const simd::VecD all = simd::veq(a, a);
  const simd::VecD none = simd::vzero();
  EXPECT_EQ(simd::vmovemask(all),
            (1 << simd::kLanes) - 1);
  EXPECT_EQ(simd::vmovemask(none), 0);
  EXPECT_TRUE(simd::vall(all));
  EXPECT_TRUE(simd::vany(all));
  EXPECT_FALSE(simd::vall(none));
  EXPECT_FALSE(simd::vany(none));

  const simd::VecD mixed = simd::vle(a, simd::vload(kLaneB));
  int expected = 0;
  for (std::size_t l = 0; l < simd::kLanes; ++l)
    if (kLaneA[l] <= kLaneB[l]) expected |= 1 << l;
  EXPECT_EQ(simd::vmovemask(mixed), expected);
}

TEST(SimdWrapperTest, GatherReadsDoubleDomainIndices) {
  const double table[8] = {10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0, 17.0};
  double idx[simd::kLanes];
  for (std::size_t l = 0; l < simd::kLanes; ++l)
    idx[l] = static_cast<double>((3 * l + 1) % 8);
  double got[simd::kLanes];
  simd::vstore(got, simd::vgather(table, simd::vload(idx)));
  for (std::size_t l = 0; l < simd::kLanes; ++l)
    EXPECT_EQ(bits(got[l]), bits(table[(3 * l + 1) % 8])) << "lane " << l;
}

TEST(SimdWrapperTest, RowOffsetsAreLaneTimesStride) {
  double off[simd::kLanes];
  simd::vstore(off, simd::vrow_offsets(16.0));
  for (std::size_t l = 0; l < simd::kLanes; ++l)
    EXPECT_EQ(bits(off[l]), bits(static_cast<double>(l) * 16.0));
}

// ----------------------------------------------------- runtime override --

// -------------------------------------------------- integer lane ops ----

TEST(SimdIntWrapperTest, WrappingAddAndMaddMatchScalarLanewise) {
  constexpr std::size_t kS = 2 * simd::kIntLanes;
  // Values chosen so both int16 products and the int32 pair sums exercise
  // sign mixes, and the int32 add path wraps at least once.
  std::int16_t a16[kS], b16[kS];
  for (std::size_t i = 0; i < kS; ++i) {
    a16[i] = static_cast<std::int16_t>(i % 2 == 0 ? 32000 - 7 * i : -31000);
    b16[i] = static_cast<std::int16_t>(i % 3 == 0 ? -32768 : 29876 - i);
  }
  std::int32_t madd[simd::kIntLanes];
  simd::istore(madd, simd::smadd(simd::sload(a16), simd::sload(b16)));
  for (std::size_t l = 0; l < simd::kIntLanes; ++l) {
    // pmaddwd reference: exact int64 pair sum truncated to int32.
    const std::int64_t wide =
        static_cast<std::int64_t>(a16[2 * l]) * b16[2 * l] +
        static_cast<std::int64_t>(a16[2 * l + 1]) * b16[2 * l + 1];
    EXPECT_EQ(madd[l], static_cast<std::int32_t>(wide)) << "lane " << l;
  }

  std::int32_t x32[simd::kIntLanes], add[simd::kIntLanes];
  for (std::size_t l = 0; l < simd::kIntLanes; ++l)
    x32[l] = l % 2 == 0 ? 0x7ffffff0 : -0x70000000;
  simd::istore(add, simd::iadd(simd::iload(x32), simd::ibroadcast(0x123)));
  for (std::size_t l = 0; l < simd::kIntLanes; ++l) {
    const std::uint32_t wrapped =
        static_cast<std::uint32_t>(x32[l]) + std::uint32_t{0x123};
    EXPECT_EQ(add[l], static_cast<std::int32_t>(wrapped)) << "lane " << l;
  }
}

TEST(SimdIntWrapperTest, CompareMaskAndPairFoldMatchScalar) {
  constexpr std::size_t kS = 2 * simd::kIntLanes;
  std::int16_t a16[kS], b16[kS];
  for (std::size_t i = 0; i < kS; ++i) {
    a16[i] = static_cast<std::int16_t>(static_cast<int>(i) - 3);
    b16[i] = static_cast<std::int16_t>(i % 2 == 0 ? 0 : i - 3);
  }
  const simd::VecS gt = simd::scmpgt(simd::sload(a16), simd::sload(b16));
  std::int16_t mask[kS];
  simd::sstore(mask, gt);
  for (std::size_t i = 0; i < kS; ++i)
    EXPECT_EQ(mask[i], a16[i] > b16[i] ? -1 : 0) << "elem " << i;

  // smask_pairs: bit l set iff BOTH int16 halves of pair l are all-ones —
  // the per-sample AND the rule kernel folds with.
  const std::uint32_t bits = simd::smask_pairs(gt);
  for (std::size_t l = 0; l < simd::kIntLanes; ++l) {
    const bool both = a16[2 * l] > b16[2 * l] && a16[2 * l + 1] > b16[2 * l + 1];
    EXPECT_EQ((bits >> l) & 1u, both ? 1u : 0u) << "pair " << l;
  }
  EXPECT_EQ(simd::smask_pairs(simd::strue()),
            (1u << simd::kIntLanes) - 1u);

  // Mask logic identities the rule kernel relies on.
  std::int16_t andv[kS], orv[kS], andnotv[kS];
  const simd::VecS t = simd::strue();
  simd::sstore(andv, simd::sand(gt, t));
  simd::sstore(orv, simd::sor(gt, simd::sbroadcast(0)));
  simd::sstore(andnotv, simd::sandnot(gt, t));  // ~gt & true
  for (std::size_t i = 0; i < kS; ++i) {
    EXPECT_EQ(andv[i], mask[i]);
    EXPECT_EQ(orv[i], mask[i]);
    EXPECT_EQ(andnotv[i], static_cast<std::int16_t>(~mask[i]));
  }
}

TEST(SimdIntWrapperTest, WideningLoadAndPairBroadcast) {
  constexpr std::size_t kS = 2 * simd::kIntLanes;
  std::int8_t a8[kS];
  for (std::size_t i = 0; i < kS; ++i)
    a8[i] = static_cast<std::int8_t>(i % 2 == 0 ? -128 + static_cast<int>(i)
                                                : 127 - static_cast<int>(i));
  std::int16_t widened[kS];
  simd::sstore(widened, simd::sload8(a8));
  for (std::size_t i = 0; i < kS; ++i)
    EXPECT_EQ(widened[i], static_cast<std::int16_t>(a8[i])) << "elem " << i;

  std::int16_t pair[kS];
  simd::sstore(pair, simd::sbroadcast_pair(-12345, 31000));
  for (std::size_t l = 0; l < simd::kIntLanes; ++l) {
    EXPECT_EQ(pair[2 * l], -12345) << "pair " << l;
    EXPECT_EQ(pair[2 * l + 1], 31000) << "pair " << l;
  }
}

TEST(SimdModeTest, ForceScalarSwitchesActiveLanesAndIsa) {
  const ScalarModeGuard guard;
  simd::force_scalar(true);
  EXPECT_TRUE(simd::scalar_forced());
  EXPECT_EQ(simd::active_lanes(), 1u);
  EXPECT_STREQ(simd::active_isa(), "scalar");
  simd::force_scalar(false);
  EXPECT_FALSE(simd::scalar_forced());
  EXPECT_EQ(simd::active_lanes(), simd::kLanes);
  EXPECT_STREQ(simd::active_isa(), simd::kIsa);
}

// ------------------------------------------------- batch kernel oracle --

/// Two-class Gaussian blobs, linearly separable up to `noise`.
Dataset make_blobs(std::size_t n_per_class, double separation, double noise,
                   std::uint64_t seed, std::size_t dims = 5) {
  std::vector<std::string> names;
  for (std::size_t f = 0; f < dims; ++f)
    names.push_back("f" + std::to_string(f));
  Dataset d(std::move(names), {"neg", "pos"});
  Rng rng(seed);
  std::vector<double> x(dims);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (int cls = 0; cls < 2; ++cls) {
      const double center = cls == 0 ? 0.0 : separation;
      for (std::size_t f = 0; f < dims; ++f)
        x[f] = rng.gaussian(f == 0 ? center : 0.0, f == 0 ? noise : 1.0);
      d.add(x, cls);
    }
  }
  return d;
}

/// A 3-class dataset separable along feature 0 (k > 2 batch lowering).
Dataset make_three_class(std::size_t n_per_class, std::uint64_t seed) {
  Dataset d({"f0", "f1", "f2"}, {"a", "b", "c"});
  Rng rng(seed);
  std::vector<double> x(3);
  for (std::size_t i = 0; i < n_per_class; ++i) {
    for (int cls = 0; cls < 3; ++cls) {
      x[0] = rng.gaussian(cls * 4.0, 0.7);
      x[1] = rng.gaussian(0.0, 1.0);
      x[2] = rng.gaussian(0.0, 2.0);
      d.add(x, cls);
    }
  }
  return d;
}

/// Sprinkle NaN / ±inf over the test rows so tree descent, rule predicates,
/// and the dense standardize/GEMM paths all see special values.
Dataset with_specials(Dataset d) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> row(d.feature_count());
  for (std::size_t i = 0; i < d.size(); i += 7) {
    for (std::size_t f = 0; f < d.feature_count(); ++f)
      row[f] = d.features(i)[f];
    row[i % d.feature_count()] = (i % 3 == 0) ? nan : (i % 3 == 1 ? inf : -inf);
    d.add(row, d.label(i));
  }
  return d;
}

/// The batch contract: every prefix size 1..33 (covering 4-lane and 2-lane
/// remainder tails) of predict_proba_batch_into is bit-identical to the
/// per-sample predict_proba_into rows, in native and forced-scalar mode,
/// and rows beyond class_count() in a padded output stride stay untouched.
void expect_batch_matches(const Classifier& c, const Dataset& test) {
  const ScalarModeGuard guard;
  const auto lowered = compiled::compile(c);
  ASSERT_NE(lowered, nullptr);
  const std::size_t k = lowered->class_count();
  const std::size_t stride = test.feature_count();
  const double* x = test.features(0).data();  // rows are contiguous

  std::vector<double> ref(test.size() * k);
  for (std::size_t i = 0; i < test.size(); ++i)
    lowered->predict_proba_into(test.features(i), {ref.data() + i * k, k});

  for (const bool scalar_mode : {false, true}) {
    simd::force_scalar(scalar_mode);
    const std::size_t max_n = std::min<std::size_t>(33, test.size());
    for (std::size_t n = 1; n <= max_n; ++n) {
      std::vector<double> out(n * k, -1.0);
      lowered->predict_proba_batch_into(x, n, stride, out.data(), k);
      for (std::size_t i = 0; i < n * k; ++i)
        ASSERT_EQ(bits(out[i]), bits(ref[i]))
            << (scalar_mode ? "scalar" : "native") << " n=" << n
            << " element " << i;
    }

    // Whole set in one call, through a padded output stride.
    const std::size_t out_stride = k + 3;
    std::vector<double> out(test.size() * out_stride, -1.0);
    lowered->predict_proba_batch_into(x, test.size(), stride, out.data(),
                                      out_stride);
    for (std::size_t i = 0; i < test.size(); ++i) {
      for (std::size_t j = 0; j < k; ++j)
        ASSERT_EQ(bits(out[i * out_stride + j]), bits(ref[i * k + j]))
            << "row " << i;
      for (std::size_t j = k; j < out_stride; ++j)
        ASSERT_EQ(out[i * out_stride + j], -1.0) << "padding clobbered";
    }

    // n = 0 is a no-op.
    lowered->predict_proba_batch_into(x, 0, stride, out.data(), out_stride);
  }
}

/// serialize -> load -> compile -> batch must match the original too.
void expect_roundtrip_batch_matches(const Classifier& c, const Dataset& test) {
  std::stringstream stream;
  serialize_classifier(c, stream);
  const auto restored = deserialize_classifier(stream);
  ASSERT_NE(restored, nullptr);
  expect_batch_matches(*restored, test);
}

TEST(SimdBatchTest, DecisionTreeLockstepDescent) {
  const Dataset train = make_blobs(60, 3.0, 1.0, 111);
  const Dataset test = with_specials(make_blobs(40, 3.0, 1.2, 112));
  DecisionTree c;
  c.fit(train);
  expect_batch_matches(c, test);  // default dispatch: per-row loop
  const TreeLockstepGuard lockstep;
  expect_batch_matches(c, test);
  expect_roundtrip_batch_matches(c, test);
}

TEST(SimdBatchTest, DecisionTreeThreeClass) {
  const Dataset train = make_three_class(50, 121);
  const Dataset test = make_three_class(30, 122);
  DecisionTree c;
  c.fit(train);
  expect_batch_matches(c, test);
  const TreeLockstepGuard lockstep;
  expect_batch_matches(c, test);
}

/// Deep synthetic FlatTree: lanes diverge immediately and park at very
/// different depths, so the self-loop blend logic runs for many levels
/// with a mix of parked and descending lanes. Built directly (random
/// splits over the node frontier) because trained trees on small corpora
/// stay shallow.
TEST(SimdBatchTest, DeepSyntheticTreeLockstepMatchesEval) {
  constexpr std::size_t kFeatures = 7;
  constexpr std::size_t kClasses = 3;
  Rng rng(201);
  std::vector<std::uint32_t> feature{0};
  std::vector<double> threshold{0.0};
  std::vector<std::int32_t> left{-1};
  std::vector<std::int32_t> right{-1};
  std::vector<std::size_t> frontier{0};
  while (feature.size() + 2 <= 2047 && !frontier.empty()) {
    const std::size_t pick =
        static_cast<std::size_t>(rng.uniform_index(frontier.size()));
    const std::size_t node = frontier[pick];
    frontier.erase(frontier.begin() + static_cast<std::ptrdiff_t>(pick));
    feature[node] = static_cast<std::uint32_t>(rng.uniform_index(kFeatures));
    threshold[node] = rng.uniform();
    left[node] = static_cast<std::int32_t>(feature.size());
    right[node] = static_cast<std::int32_t>(feature.size() + 1);
    for (int child = 0; child < 2; ++child) {
      frontier.push_back(feature.size());
      feature.push_back(0);
      threshold.push_back(0.0);
      left.push_back(-1);
      right.push_back(-1);
    }
  }
  std::size_t slot = 0;
  std::vector<double> proba;
  for (std::size_t q = 0; q < feature.size(); ++q) {
    if (left[q] >= 0) continue;
    left[q] = right[q] = static_cast<std::int32_t>(-1 - slot);
    for (std::size_t c = 0; c < kClasses; ++c)
      proba.push_back(c == slot % kClasses ? 1.0 : 0.0);
    ++slot;
  }
  const compiled::FlatTree tree(kClasses, kFeatures, std::move(feature),
                                std::move(threshold), std::move(left),
                                std::move(right), std::move(proba));

  constexpr std::size_t kRows = 37;  // remainder tail at every lane width
  std::vector<double> x(kRows * kFeatures);
  for (auto& v : x) v = rng.uniform();
  std::vector<double> ref(kRows * kClasses);
  for (std::size_t i = 0; i < kRows; ++i)
    tree.predict_proba_into({x.data() + i * kFeatures, kFeatures},
                            {ref.data() + i * kClasses, kClasses});

  const ScalarModeGuard guard;
  const TreeLockstepGuard lockstep;
  for (const bool scalar_mode : {false, true}) {
    simd::force_scalar(scalar_mode);
    std::vector<double> out(kRows * kClasses, -1.0);
    tree.predict_proba_batch_into(x.data(), kRows, kFeatures, out.data(),
                                  kClasses);
    for (std::size_t i = 0; i < out.size(); ++i)
      ASSERT_EQ(bits(out[i]), bits(ref[i]))
          << (scalar_mode ? "scalar" : "native") << " element " << i;
  }
}

TEST(SimdBatchTest, RipperLanewiseRules) {
  const Dataset train = make_blobs(60, 3.0, 1.0, 131);
  const Dataset test = with_specials(make_blobs(40, 3.0, 1.2, 132));
  Ripper c;
  c.fit(train);
  expect_batch_matches(c, test);
  expect_roundtrip_batch_matches(c, test);
}

TEST(SimdBatchTest, OneRSingleFeatureRules) {
  const Dataset train = make_blobs(60, 3.0, 1.0, 141);
  const Dataset test = make_blobs(40, 3.0, 1.2, 142);
  OneR c;
  c.fit(train);
  expect_batch_matches(c, test);
}

TEST(SimdBatchTest, NaiveBayesDefaultRowLoop) {
  const Dataset train = make_three_class(50, 151);
  const Dataset test = make_three_class(30, 152);
  NaiveBayes c;
  c.fit(train);
  expect_batch_matches(c, test);
}

TEST(SimdBatchTest, LogisticRegressionBlockedGemm) {
  const Dataset train = make_three_class(50, 161);
  const Dataset test = with_specials(make_three_class(30, 162));
  LogisticRegression c;
  c.fit(train);
  expect_batch_matches(c, test);
  expect_roundtrip_batch_matches(c, test);
}

TEST(SimdBatchTest, MlpTwoLayerBlockedGemm) {
  // 5 features exercises both the 4-wide gemm row tile and its tail.
  const Dataset train = make_blobs(60, 3.0, 1.0, 171);
  const Dataset test = make_blobs(40, 3.0, 1.2, 172);
  Mlp::Params params;
  params.epochs = 30;
  Mlp c(params);
  c.fit(train);
  expect_batch_matches(c, test);
  expect_roundtrip_batch_matches(c, test);
}

TEST(SimdBatchTest, AdaBoostOfOneRBlockedMembers) {
  const Dataset train = make_blobs(60, 3.0, 1.0, 181);
  const Dataset test = make_blobs(40, 3.0, 1.2, 182);
  AdaBoost c(std::make_unique<OneR>());
  c.fit(train);
  expect_batch_matches(c, test);
}

TEST(SimdBatchTest, BaggingOfTreesBlockedMembers) {
  const Dataset train = make_blobs(60, 3.0, 1.0, 191);
  const Dataset test = with_specials(make_blobs(40, 3.0, 1.2, 192));
  Bagging c(std::make_unique<DecisionTree>());
  c.fit(train);
  expect_batch_matches(c, test);
  expect_roundtrip_batch_matches(c, test);
  const TreeLockstepGuard lockstep;
  expect_batch_matches(c, test);
}

}  // namespace
}  // namespace smart2

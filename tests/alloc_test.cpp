// Zero-allocation guarantee for the steady-state inference loops.
//
// This binary replaces global operator new/delete with counting wrappers
// that delegate to malloc/free, warms each hot loop once (thread-local
// ScratchStack blocks grow on first use), and then asserts the warm loop
// performs no heap allocations per sample.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/arena.hpp"
#include "common/parallel.hpp"
#include "core/online_detector.hpp"
#include "core/two_stage.hpp"
#include "hpc/dataset_cache.hpp"
#include "ml/decision_tree.hpp"
#include "ml/train_view.hpp"
#include "serve/service.hpp"
#include "workload/appmodels.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t n) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc_aligned(std::size_t n, std::size_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (align < sizeof(void*)) align = sizeof(void*);
  void* p = nullptr;
  if (posix_memalign(&p, align, n != 0 ? n : 1) == 0) return p;
  throw std::bad_alloc();
}

void* counted_alloc_nothrow(std::size_t n) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n != 0 ? n : 1);
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc_aligned(n, static_cast<std::size_t>(a));
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc_nothrow(n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  return counted_alloc_nothrow(n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace smart2 {
namespace {

CollectorConfig fast_collector() {
  CollectorConfig cfg;
  cfg.cycles_per_sample = 20'000;
  cfg.samples_per_run = 2;
  cfg.warmup_cycles = 20'000;
  return cfg;
}

/// Shared small profiled dataset (built once; profiling dominates runtime).
const Dataset& small_dataset() {
  static const Dataset d = [] {
    CorpusConfig corpus;
    corpus.scale = 0.04;  // ~145 apps
    return cached_hpc_dataset(corpus, fast_collector(), /*cache_dir=*/"");
  }();
  return d;
}

// ------------------------------------------------------- scratch arena ---

TEST(AllocTest, ScratchStackSteadyStateDoesNotAllocate) {
  ScratchStack& stack = ScratchStack::current();
  stack.reserve(1024);
  {  // warm the frame bookkeeping
    const ScratchSpan warm(128);
    (void)warm;
  }
  const std::uint64_t before = allocation_count();
  for (int iter = 0; iter < 1000; ++iter) {
    const ScratchSpan outer(256);
    const ScratchSpan inner(128);
    outer.data()[0] = 1.0;
    inner.data()[0] = 2.0;
  }
  EXPECT_EQ(allocation_count(), before);
}

TEST(AllocTest, NestedBorrowsKeepBlocksStable) {
  const ScratchSpan outer(64);
  double* const outer_ptr = outer.data();
  outer_ptr[0] = 42.0;
  {
    // Force growth past the current block: the outer span must not move.
    const ScratchSpan inner(1 << 16);
    inner.data()[0] = 7.0;
    EXPECT_EQ(outer.data(), outer_ptr);
    EXPECT_EQ(outer_ptr[0], 42.0);
  }
  EXPECT_EQ(outer_ptr[0], 42.0);
}

// ------------------------------------------------- steady-state detect ---

TEST(AllocTest, DetectSteadyStateIsAllocationFree) {
  TwoStageConfig cfg;
  cfg.stage2_model = "J48";
  TwoStageHmd hmd(cfg);
  hmd.train(small_dataset());
  ASSERT_TRUE(hmd.compiled());

  // Warm-up pass: first use grows the thread-local ScratchStack.
  for (std::size_t i = 0; i < small_dataset().size(); ++i)
    (void)hmd.detect(small_dataset().features(i));

  const std::uint64_t before = allocation_count();
  std::size_t malware = 0;
  for (std::size_t i = 0; i < small_dataset().size(); ++i)
    if (hmd.detect(small_dataset().features(i)).is_malware) ++malware;
  EXPECT_EQ(allocation_count(), before) << "detect() allocated on the hot path";
  EXPECT_GT(malware, 0u);  // the loop exercised the stage-2 branch
}

TEST(AllocTest, PredictBatchSteadyStateIsAllocationFree) {
  TwoStageConfig cfg;
  cfg.stage2_model = "J48";
  TwoStageHmd hmd(cfg);
  hmd.train(small_dataset());
  ASSERT_TRUE(hmd.compiled());

  // Cyclic-extend past several kDetectEpoch blocks so the measured loop
  // crosses epoch boundaries and stage-2 sub-batches.
  Dataset big(small_dataset().feature_names(), small_dataset().class_names());
  const std::size_t target = 2 * TwoStageHmd::kDetectEpoch + 37;
  big.reserve(target);
  for (std::size_t i = 0; i < target; ++i) {
    const std::size_t src = i % small_dataset().size();
    big.add(small_dataset().features(src), small_dataset().label(src));
  }
  std::vector<Detection> out(big.size());

  // Serial epochs (the pool fan-out builds per-call task state); warm once.
  parallel::set_thread_count(1);
  hmd.predict_batch_into(big, out);

  const std::uint64_t before = allocation_count();
  for (int iter = 0; iter < 10; ++iter) hmd.predict_batch_into(big, out);
  EXPECT_EQ(allocation_count(), before)
      << "predict_batch_into allocated on the warm batch path";
  parallel::set_thread_count(0);

  std::size_t malware = 0;
  for (const Detection& det : out)
    if (det.is_malware) ++malware;
  EXPECT_GT(malware, 0u);  // the loop exercised the stage-2 batch branch
}

TEST(AllocTest, QuantizedPredictBatchSteadyStateIsAllocationFree) {
  TwoStageConfig cfg;
  cfg.stage2_model = "J48";
  TwoStageHmd hmd(cfg);
  hmd.train(small_dataset());
  std::vector<double> max_abs(small_dataset().feature_count(), 0.0);
  for (std::size_t i = 0; i < small_dataset().size(); ++i) {
    const auto x = small_dataset().features(i);
    for (std::size_t f = 0; f < max_abs.size(); ++f)
      max_abs[f] = std::max(max_abs[f], std::abs(x[f]));
  }
  hmd.quantize({.width = 8, .format = {}}, max_abs);
  ASSERT_TRUE(hmd.quantized());

  Dataset big(small_dataset().feature_names(), small_dataset().class_names());
  const std::size_t target = 2 * TwoStageHmd::kDetectEpoch + 37;
  big.reserve(target);
  for (std::size_t i = 0; i < target; ++i) {
    const std::size_t src = i % small_dataset().size();
    big.add(small_dataset().features(src), small_dataset().label(src));
  }
  std::vector<Detection> out(big.size());

  parallel::set_thread_count(1);
  hmd.predict_batch_into(big, out);

  const std::uint64_t before = allocation_count();
  for (int iter = 0; iter < 10; ++iter) hmd.predict_batch_into(big, out);
  for (std::size_t i = 0; i < small_dataset().size(); ++i)
    (void)hmd.detect(small_dataset().features(i));
  EXPECT_EQ(allocation_count(), before)
      << "quantized batch/detect allocated on the warm epoch path";
  parallel::set_thread_count(0);

  std::size_t malware = 0;
  for (const Detection& det : out)
    if (det.is_malware) ++malware;
  EXPECT_GT(malware, 0u);  // the loop exercised the quantized stage 2
}

TEST(AllocTest, OnlineObserveSteadyStateIsAllocationFree) {
  TwoStageConfig cfg;
  cfg.stage2_model = "OneR";
  TwoStageHmd hmd(cfg);
  hmd.train(small_dataset());

  // Pre-gather the Common-4 windows outside the measured loop.
  std::vector<std::vector<double>> windows;
  windows.reserve(small_dataset().size());
  for (std::size_t i = 0; i < small_dataset().size(); ++i) {
    std::vector<double> common;
    common.reserve(hmd.plan().common.size());
    for (std::size_t f : hmd.plan().common)
      common.push_back(small_dataset().features(i)[f]);
    windows.push_back(std::move(common));
  }

  OnlineDetector detector(hmd, OnlineDetectorConfig{});
  for (const auto& w : windows) (void)detector.observe(w);  // warm up
  detector.reset();

  const std::uint64_t before = allocation_count();
  for (const auto& w : windows) (void)detector.observe(w);
  EXPECT_EQ(allocation_count(), before)
      << "observe() allocated on the hot path";
}

TEST(AllocTest, ServingLoopSteadyStateIsAllocationFree) {
  TwoStageConfig cfg;
  cfg.stage2_model = "J48";
  auto hmd = std::make_shared<TwoStageHmd>(cfg);
  hmd->train(small_dataset());

  // Pre-gather Common-4 windows outside the measured loop (as the online
  // observe test does); streams cycle through them.
  std::vector<std::vector<double>> windows;
  windows.reserve(small_dataset().size());
  for (std::size_t i = 0; i < small_dataset().size(); ++i) {
    std::vector<double> common;
    common.reserve(hmd->plan().common.size());
    for (std::size_t f : hmd->plan().common)
      common.push_back(small_dataset().features(i)[f]);
    windows.push_back(std::move(common));
  }

  serve::ServeConfig serve_cfg;
  serve_cfg.shards = 2;
  serve_cfg.queue_capacity = 256;
  serve_cfg.max_streams_per_shard = 128;
  serve_cfg.evict_after_ticks = 0;  // fixed population: nobody is evicted
  serve::DetectionService service(std::move(hmd), serve_cfg);

  // Serial tick (the pool fan-out builds per-call task state); a fixed
  // stream population so every admission (the one allocating step: the
  // stream-index map node) happens during warm-up.
  parallel::set_thread_count(1);
  constexpr std::uint64_t kStreams = 64;
  auto cycle = [&](std::uint64_t tick) {
    for (std::uint64_t s = 0; s < kStreams; ++s)
      ASSERT_TRUE(
          service.submit(s, windows[(s + tick * kStreams) % windows.size()]));
    ASSERT_EQ(service.tick(), kStreams);
  };
  cycle(0);  // warm: admits all streams, grows the scratch arena

  const std::uint64_t before = allocation_count();
  for (std::uint64_t tick = 1; tick <= 10; ++tick) cycle(tick);
  EXPECT_EQ(allocation_count(), before)
      << "submit()/tick() allocated on the warm serving path";
  parallel::set_thread_count(0);
  EXPECT_EQ(service.stats().verdicts, 11 * kStreams);
}

TEST(AllocTest, BatchedIndexServingSteadyStateIsAllocationFree) {
  // Same contract as above, but on the batched-resolve path (stream
  // capacity > kDetectEpoch) with a multi-epoch tick (300 samples = one
  // full epoch + a partial), so the prefetched probe pass, the slot_idx
  // scratch, and the pure-math fold are all inside the measured window.
  TwoStageConfig cfg;
  cfg.stage2_model = "J48";
  auto hmd = std::make_shared<TwoStageHmd>(cfg);
  hmd->train(small_dataset());

  std::vector<std::vector<double>> windows;
  windows.reserve(small_dataset().size());
  for (std::size_t i = 0; i < small_dataset().size(); ++i) {
    std::vector<double> common;
    common.reserve(hmd->plan().common.size());
    for (std::size_t f : hmd->plan().common)
      common.push_back(small_dataset().features(i)[f]);
    windows.push_back(std::move(common));
  }

  serve::ServeConfig serve_cfg;
  serve_cfg.shards = 1;
  serve_cfg.queue_capacity = 512;
  serve_cfg.max_streams_per_shard = 512;  // > kDetectEpoch: batched resolve
  serve_cfg.evict_after_ticks = 0;
  serve::DetectionService service(std::move(hmd), serve_cfg);

  parallel::set_thread_count(1);
  constexpr std::uint64_t kStreams = 300;
  auto cycle = [&](std::uint64_t tick) {
    for (std::uint64_t s = 0; s < kStreams; ++s)
      ASSERT_TRUE(
          service.submit(s, windows[(s + tick * kStreams) % windows.size()]));
    ASSERT_EQ(service.tick(), kStreams);
  };
  cycle(0);  // warm: admits all streams, grows the scratch arena

  const std::uint64_t before = allocation_count();
  for (std::uint64_t tick = 1; tick <= 10; ++tick) cycle(tick);
  EXPECT_EQ(allocation_count(), before)
      << "batched submit()/tick() allocated on the warm serving path";
  parallel::set_thread_count(0);
  EXPECT_EQ(service.stats().verdicts, 11 * kStreams);
}

// --------------------------------------------- presorted training engine ---

/// Warm fit + counted second fit under the given engine.
std::uint64_t warm_fit_allocations(const Dataset& d,
                                   std::span<const double> w,
                                   TrainEngine engine,
                                   std::size_t* nodes_out) {
  set_train_engine(engine);
  DecisionTree warm;
  warm.fit_weighted(d, w);  // grows the thread-local ScratchStack
  const std::uint64_t before = allocation_count();
  DecisionTree tree;
  tree.fit_weighted(d, w);
  const std::uint64_t allocs = allocation_count() - before;
  if (nodes_out != nullptr) *nodes_out = tree.node_count();
  return allocs;
}

TEST(AllocTest, PresortedSplitSearchSteadyStateDoesNotAllocatePerRow) {
  const Dataset& d = small_dataset();
  const std::vector<double> w(d.size(), 1.0);
  const TrainEngine saved = train_engine();

  std::size_t nodes = 0;
  const std::uint64_t presorted = warm_fit_allocations(
      d, w, TrainEngine::kPresorted, &nodes);
  const std::uint64_t legacy = warm_fit_allocations(
      d, w, TrainEngine::kLegacy, nullptr);
  set_train_engine(saved);

  // A warm presorted fit allocates only per fit (the view's column store,
  // the sorted-index table, one stable_sort temp per feature) and per tree
  // node (the Node itself and its class_weight vector). The split search
  // and the stable partitions run entirely out of the scratch arena, so a
  // generous per-feature / per-node budget bounds the total independent of
  // the row count.
  const std::uint64_t budget = 32 + 8 * d.feature_count() + 8 * nodes;
  EXPECT_LE(presorted, budget)
      << "presorted fit allocated per row inside the split search";
  ASSERT_GT(nodes, 1u);  // the fit actually grew a tree

  // The legacy engine allocates per node per feature (subset + sort
  // buffers); the presorted engine must allocate strictly less.
  EXPECT_LT(presorted, legacy);
}

}  // namespace
}  // namespace smart2

// Tests for src/core: feature plan, model zoo, the two-stage pipeline, the
// single-stage baseline, and the run-time monitor.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "core/feature_plan.hpp"
#include "core/model_zoo.hpp"
#include "core/runtime_monitor.hpp"
#include "core/single_stage.hpp"
#include "core/two_stage.hpp"
#include "hpc/dataset_cache.hpp"
#include "workload/appmodels.hpp"

namespace smart2 {
namespace {

CollectorConfig fast_collector() {
  CollectorConfig cfg;
  cfg.cycles_per_sample = 20'000;
  cfg.samples_per_run = 2;
  cfg.warmup_cycles = 20'000;
  return cfg;
}

/// Shared small profiled dataset (built once; profiling dominates runtime).
const Dataset& small_dataset() {
  static const Dataset d = [] {
    CorpusConfig corpus;
    corpus.scale = 0.04;  // ~145 apps
    return cached_hpc_dataset(corpus, fast_collector(), /*cache_dir=*/"");
  }();
  return d;
}

// ----------------------------------------------------------- model zoo ---

TEST(ModelZooTest, NamesAreThePapersFour) {
  EXPECT_EQ(classifier_names(),
            (std::vector<std::string>{"J48", "JRip", "MLP", "OneR"}));
}

TEST(ModelZooTest, MakesEveryKnownClassifier) {
  for (const auto& name : classifier_names()) {
    auto c = make_classifier(name);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->name(), name);
  }
  EXPECT_EQ(make_classifier("MLR")->name(), "MLR");
}

TEST(ModelZooTest, UnknownNameThrows) {
  EXPECT_THROW(make_classifier("SVM"), std::invalid_argument);
}

TEST(ModelZooTest, BoostedWrapsBase) {
  auto b = make_boosted("OneR", 5);
  EXPECT_EQ(b->name(), "AdaBoost(OneR)");
}

// --------------------------------------------------------- feature plan --

TEST(FeaturePlanTest, SizesMatchThePaper) {
  const FeaturePlan plan = build_feature_plan(small_dataset());
  EXPECT_EQ(plan.common.size(), kCommonFeatureCount);
  EXPECT_EQ(plan.top16.size(), kIntermediateFeatureCount);
  for (const auto& custom : plan.custom)
    EXPECT_EQ(custom.size(), kCustomFeatureCount);
}

TEST(FeaturePlanTest, CustomSetsContainCommon) {
  const FeaturePlan plan = build_feature_plan(small_dataset());
  for (const auto& custom : plan.custom) {
    for (std::size_t f : plan.common) {
      EXPECT_NE(std::find(custom.begin(), custom.end(), f), custom.end());
    }
  }
}

TEST(FeaturePlanTest, IndicesAreValidAndUniquePerSet) {
  const FeaturePlan plan = build_feature_plan(small_dataset());
  auto check = [&](const std::vector<std::size_t>& set) {
    for (std::size_t f : set) EXPECT_LT(f, kNumEvents);
    auto sorted = set;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  };
  check(plan.common);
  check(plan.top16);
  for (const auto& custom : plan.custom) check(custom);
}

TEST(FeaturePlanTest, FeatureNamesHelper) {
  const FeaturePlan plan = build_feature_plan(small_dataset());
  const auto names = feature_names_of(small_dataset(), plan.common);
  ASSERT_EQ(names.size(), plan.common.size());
  for (const auto& n : names) EXPECT_FALSE(n.empty());
}

// ------------------------------------------------------------ two-stage --

TEST(TwoStageTest, TrainRejectsNonMulticlass) {
  Dataset binary({"f"}, {"neg", "pos"});
  binary.add(std::vector<double>{1.0}, 0);
  TwoStageHmd hmd;
  EXPECT_THROW(hmd.train(binary), std::invalid_argument);
}

TEST(TwoStageTest, DetectBeforeTrainThrows) {
  TwoStageHmd hmd;
  const std::vector<double> x(kNumEvents, 0.0);
  EXPECT_THROW(hmd.detect(x), std::logic_error);
}

TEST(TwoStageTest, BadHoldoutThrows) {
  TwoStageConfig cfg;
  cfg.selection_holdout = 0.0;
  EXPECT_THROW(TwoStageHmd{cfg}, std::invalid_argument);
}

TEST(TwoStageTest, EndToEndTrainsAndDetects) {
  Rng rng(101);
  auto [train, test] = small_dataset().stratified_split(0.6, rng);

  TwoStageConfig cfg;
  cfg.stage2_model = "J48";  // fixed model keeps the test fast
  TwoStageHmd hmd(cfg);
  hmd.train(train);
  ASSERT_TRUE(hmd.trained());

  const TwoStageEval eval = evaluate_two_stage(hmd, test);
  // The pipeline must be much better than chance on every class.
  for (std::size_t m = 0; m < kNumMalwareClasses; ++m) {
    EXPECT_GT(eval.per_class[m].f_measure, 0.5)
        << to_string(kMalwareClasses[m]);
    EXPECT_GT(eval.per_class[m].auc, 0.6);
  }
  EXPECT_GT(eval.multiclass_accuracy, 0.5);
}

TEST(TwoStageTest, AutoSelectionPicksAKnownModel) {
  Rng rng(102);
  auto [train, test] = small_dataset().stratified_split(0.6, rng);
  TwoStageConfig cfg;  // stage2_model empty = auto
  TwoStageHmd hmd(cfg);
  hmd.train(train);
  const auto& names = classifier_names();
  for (AppClass c : kMalwareClasses) {
    const auto& picked = hmd.stage2_model_name(c);
    EXPECT_NE(std::find(names.begin(), names.end(), picked), names.end())
        << picked;
  }
}

TEST(TwoStageTest, BoostedModeWrapsStage2) {
  Rng rng(103);
  auto [train, test] = small_dataset().stratified_split(0.6, rng);
  TwoStageConfig cfg;
  cfg.stage2_model = "OneR";
  cfg.boost = true;
  cfg.boost_rounds = 5;
  TwoStageHmd hmd(cfg);
  hmd.train(train);
  EXPECT_EQ(hmd.stage2(AppClass::kVirus).name(), "AdaBoost(OneR)");
}

TEST(TwoStageTest, FeatureModesChangeStage2Width) {
  Rng rng(104);
  auto [train, test] = small_dataset().stratified_split(0.6, rng);
  for (auto mode : {Stage2Features::kCommon4, Stage2Features::kCustom8,
                    Stage2Features::kTop16}) {
    TwoStageConfig cfg;
    cfg.stage2_features = mode;
    cfg.stage2_model = "OneR";
    TwoStageHmd hmd(cfg);
    hmd.train(train);
    const std::size_t expect = mode == Stage2Features::kCommon4   ? 4u
                               : mode == Stage2Features::kCustom8 ? 8u
                                                                  : 16u;
    EXPECT_EQ(hmd.stage2_feature_indices(AppClass::kTrojan).size(), expect);
  }
}

TEST(TwoStageTest, BenignStage1ShortCircuits) {
  Rng rng(105);
  auto [train, test] = small_dataset().stratified_split(0.6, rng);
  TwoStageConfig cfg;
  cfg.stage2_model = "OneR";
  TwoStageHmd hmd(cfg);
  hmd.train(train);
  // Find a test instance stage 1 calls benign; its detection must be benign
  // with stage2_score == 0.
  for (std::size_t i = 0; i < test.size(); ++i) {
    const Detection det = hmd.detect(test.features(i));
    if (det.predicted_class == AppClass::kBenign && det.stage2_score == 0.0) {
      EXPECT_FALSE(det.is_malware);
      return;
    }
  }
  FAIL() << "no benign stage-1 prediction found";
}

TEST(TwoStageTest, StageAccessorsRejectBenign) {
  TwoStageConfig cfg;
  cfg.stage2_model = "OneR";
  TwoStageHmd hmd(cfg);
  Rng rng(106);
  auto [train, test] = small_dataset().stratified_split(0.6, rng);
  hmd.train(train);
  EXPECT_THROW(hmd.stage2(AppClass::kBenign), std::invalid_argument);
}

TEST(TwoStageTest, ModeNamesMatchPaper) {
  EXPECT_EQ(to_string(Stage2Features::kCommon4), "4HPC");
  EXPECT_EQ(to_string(Stage2Features::kCustom8), "8HPC");
  EXPECT_EQ(to_string(Stage2Features::kTop16), "16HPC");
}

// --------------------------------------------------------- single-stage --

TEST(SingleStageTest, TrainsAndScores) {
  Rng rng(111);
  auto [train, test] = small_dataset().stratified_split(0.6, rng);
  SingleStageConfig cfg;
  cfg.model = "J48";
  cfg.num_features = 4;
  SingleStageHmd hmd(cfg);
  hmd.train(train);
  EXPECT_EQ(hmd.features().size(), 4u);
  const SingleStageEval eval = evaluate_single_stage(hmd, test);
  EXPECT_GT(eval.overall.f_measure, 0.5);
  EXPECT_GT(eval.overall.auc, 0.55);
}

TEST(SingleStageTest, ScoreBeforeTrainThrows) {
  SingleStageHmd hmd;
  const std::vector<double> x(kNumEvents, 0.0);
  EXPECT_THROW(hmd.malware_score(x), std::logic_error);
}

TEST(SingleStageTest, ZeroFeaturesThrows) {
  SingleStageConfig cfg;
  cfg.num_features = 0;
  EXPECT_THROW(SingleStageHmd{cfg}, std::invalid_argument);
}

TEST(SingleStageTest, BoostedVariantTrains) {
  Rng rng(112);
  auto [train, test] = small_dataset().stratified_split(0.6, rng);
  SingleStageConfig cfg;
  cfg.model = "OneR";
  cfg.boost = true;
  cfg.boost_rounds = 3;
  SingleStageHmd hmd(cfg);
  hmd.train(train);
  EXPECT_TRUE(hmd.trained());
}

// ---------------------------------------------------------- pipeline io --

TEST(PipelineIoTest, SaveLoadRoundTripDetectsIdentically) {
  Rng rng(131);
  auto [train, test] = small_dataset().stratified_split(0.6, rng);
  TwoStageConfig cfg;
  cfg.boost = true;
  cfg.stage2_model = "J48";
  TwoStageHmd original(cfg);
  original.train(train);

  const std::string path =
      (std::filesystem::temp_directory_path() / "smart2_pipeline_test.txt")
          .string();
  original.save_file(path);
  const TwoStageHmd restored = TwoStageHmd::load_file(path);
  std::filesystem::remove(path);

  EXPECT_EQ(restored.plan().common, original.plan().common);
  for (AppClass c : kMalwareClasses)
    EXPECT_EQ(restored.stage2_model_name(c), original.stage2_model_name(c));
  for (std::size_t i = 0; i < test.size(); ++i) {
    const Detection a = original.detect(test.features(i));
    const Detection b = restored.detect(test.features(i));
    EXPECT_EQ(a.is_malware, b.is_malware);
    EXPECT_EQ(a.predicted_class, b.predicted_class);
    EXPECT_DOUBLE_EQ(a.stage2_score, b.stage2_score);
  }
}

TEST(PipelineIoTest, SaveUntrainedThrows) {
  TwoStageHmd hmd;
  std::ostringstream out;
  EXPECT_THROW(hmd.save(out), std::logic_error);
}

TEST(PipelineIoTest, LoadGarbageThrows) {
  std::istringstream in("definitely not a pipeline");
  EXPECT_THROW(TwoStageHmd::load(in), std::runtime_error);
}

// ------------------------------------------------------- runtime monitor --

TEST(RuntimeMonitorTest, RejectsUntrainedPipeline) {
  TwoStageHmd hmd;
  EXPECT_THROW(RuntimeMonitor(hmd, HpcCollector(fast_collector())),
               std::invalid_argument);
}

TEST(RuntimeMonitorTest, RejectsTop16Mode) {
  Rng rng(121);
  auto [train, test] = small_dataset().stratified_split(0.6, rng);
  TwoStageConfig cfg;
  cfg.stage2_features = Stage2Features::kTop16;
  cfg.stage2_model = "OneR";
  TwoStageHmd hmd(cfg);
  hmd.train(train);
  EXPECT_THROW(RuntimeMonitor(hmd, HpcCollector(fast_collector())),
               std::invalid_argument);
}

TEST(RuntimeMonitorTest, Common4ModeUsesOneRun) {
  Rng rng(122);
  auto [train, test] = small_dataset().stratified_split(0.6, rng);
  TwoStageConfig cfg;
  cfg.stage2_features = Stage2Features::kCommon4;
  cfg.stage2_model = "OneR";
  TwoStageHmd hmd(cfg);
  hmd.train(train);
  const RuntimeMonitor monitor(hmd, HpcCollector(fast_collector()));

  Rng app_rng(123);
  AppSpec app;
  app.profile = sample_profile(AppClass::kTrojan, app_rng);
  app.app_seed = app_rng.next_u64();
  const MonitorResult result = monitor.scan(app);
  EXPECT_EQ(result.runs_used, 1u);
  EXPECT_EQ(result.common_values.size(), kCommonFeatureCount);
}

TEST(RuntimeMonitorTest, Custom8ModeMayUseTwoRuns) {
  Rng rng(124);
  auto [train, test] = small_dataset().stratified_split(0.6, rng);
  TwoStageConfig cfg;
  cfg.stage2_features = Stage2Features::kCustom8;
  cfg.stage2_model = "OneR";
  TwoStageHmd hmd(cfg);
  hmd.train(train);
  const RuntimeMonitor monitor(hmd, HpcCollector(fast_collector()));

  // Scan several malware apps; whenever stage 1 flags one, the custom
  // detector needs the second measurement run.
  Rng app_rng(125);
  bool saw_two_runs = false;
  for (int i = 0; i < 10 && !saw_two_runs; ++i) {
    AppSpec app;
    app.profile = sample_profile(AppClass::kBackdoor, app_rng);
    app.app_seed = app_rng.next_u64();
    const MonitorResult result = monitor.scan(app);
    EXPECT_LE(result.runs_used, 2u);
    if (result.runs_used == 2) saw_two_runs = true;
  }
  EXPECT_TRUE(saw_two_runs);
}

TEST(RuntimeMonitorTest, CommonEventsMatchPlan) {
  Rng rng(126);
  auto [train, test] = small_dataset().stratified_split(0.6, rng);
  TwoStageConfig cfg;
  cfg.stage2_model = "OneR";
  TwoStageHmd hmd(cfg);
  hmd.train(train);
  const RuntimeMonitor monitor(hmd, HpcCollector(fast_collector()));
  const auto events = monitor.common_events();
  ASSERT_EQ(events.size(), hmd.plan().common.size());
  for (std::size_t i = 0; i < events.size(); ++i)
    EXPECT_EQ(event_index(events[i]), hmd.plan().common[i]);
}

}  // namespace
}  // namespace smart2
